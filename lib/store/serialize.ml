(** Plain-text persistence of databases (.mad files).

    Line-oriented, human-readable and diff-friendly:
    {v
    # comment
    atomtype state name:STRING hectare:INT
    linktype state-area state area 1:1
    atom state @1 'GO' 800
    link state-area @1 @11
    v}
    Atom identities are preserved across dump/load (links reference
    them).  Strings are single-quoted with [''] escaping; lists are
    [[v;v;...]]; identities are [@n]. *)

(* --- writing -------------------------------------------------------- *)

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let rec value_to_string = function
  | Value.Int i -> string_of_int i
  | Value.Float f -> string_of_float f
  | Value.Bool b -> string_of_bool b
  | Value.String s -> quote s
  | Value.Id id -> "@" ^ string_of_int id
  | Value.List vs ->
    "[" ^ String.concat ";" (List.map value_to_string vs) ^ "]"

let rec domain_to_string = function
  | Domain.Int -> "INT"
  | Domain.Float -> "FLOAT"
  | Domain.Bool -> "BOOL"
  | Domain.String -> "STRING"
  | Domain.Id_of t -> Printf.sprintf "ID(%s)" t
  | Domain.Enum cs -> Printf.sprintf "ENUM(%s)" (String.concat "," cs)
  | Domain.List_of d -> Printf.sprintf "LIST(%s)" (domain_to_string d)

let card_to_string (l, r) =
  let side = function None -> "n" | Some k -> string_of_int k in
  Printf.sprintf "%s:%s" (side l) (side r)

let dump_to_buffer db buf =
  Buffer.add_string buf "# MAD database dump\n";
  List.iter
    (fun atname ->
      let at = Database.atom_type db atname in
      Buffer.add_string buf "atomtype ";
      Buffer.add_string buf atname;
      List.iter
        (fun (a : Schema.Attr.t) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf a.name;
          Buffer.add_char buf ':';
          Buffer.add_string buf (domain_to_string a.domain))
        at.attrs;
      Buffer.add_char buf '\n')
    (Database.atom_type_names db);
  List.iter
    (fun ltname ->
      let lt = Database.link_type db ltname in
      Buffer.add_string buf
        (Printf.sprintf "linktype %s %s %s %s\n" ltname (fst lt.ends)
           (snd lt.ends) (card_to_string lt.card)))
    (Database.link_type_names db);
  List.iter
    (fun atname ->
      List.iter
        (fun (a : Atom.t) ->
          Buffer.add_string buf (Printf.sprintf "atom %s @%d" atname a.id);
          Array.iter
            (fun v ->
              Buffer.add_char buf ' ';
              Buffer.add_string buf (value_to_string v))
            a.values;
          Buffer.add_char buf '\n')
        (Database.atoms db atname))
    (Database.atom_type_names db);
  List.iter
    (fun ltname ->
      List.iter
        (fun (l, r) ->
          Buffer.add_string buf (Printf.sprintf "link %s @%d @%d\n" ltname l r))
        (Database.links db ltname))
    (Database.link_type_names db)

let dump db =
  let buf = Buffer.create 4096 in
  dump_to_buffer db buf;
  Buffer.contents buf

let dump_file db path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (dump db))

(* --- reading -------------------------------------------------------- *)

(* split a line into words, respecting single-quoted strings and
   bracketed lists *)
let split_line line lineno =
  let n = String.length line in
  let words = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      words := Buffer.contents buf :: !words;
      Buffer.clear buf
    end
  in
  let rec go i state =
    if i >= n then begin
      (match state with
       | `Plain -> ()
       | `Quoted -> Err.failf "line %d: unterminated string" lineno
       | `Bracket _ -> Err.failf "line %d: unterminated list" lineno);
      flush ()
    end
    else
      let c = line.[i] in
      match state with
      | `Plain ->
        if c = ' ' || c = '\t' then begin
          flush ();
          go (i + 1) `Plain
        end
        else if c = '\'' then begin
          Buffer.add_char buf c;
          go (i + 1) `Quoted
        end
        else if c = '[' then begin
          Buffer.add_char buf c;
          go (i + 1) (`Bracket 1)
        end
        else begin
          Buffer.add_char buf c;
          go (i + 1) `Plain
        end
      | `Quoted ->
        Buffer.add_char buf c;
        if c = '\'' then
          if i + 1 < n && line.[i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            go (i + 2) `Quoted
          end
          else go (i + 1) `Plain
        else go (i + 1) `Quoted
      | `Bracket depth ->
        Buffer.add_char buf c;
        if c = '[' then go (i + 1) (`Bracket (depth + 1))
        else if c = ']' then
          if depth = 1 then go (i + 1) `Plain else go (i + 1) (`Bracket (depth - 1))
        else go (i + 1) (`Bracket depth)
  in
  go 0 `Plain;
  List.rev !words

let parse_domain lineno s =
  let rec go s =
    match s with
    | "INT" -> Domain.Int
    | "FLOAT" -> Domain.Float
    | "BOOL" -> Domain.Bool
    | "STRING" -> Domain.String
    | _ ->
      let with_args prefix =
        let pl = String.length prefix in
        if
          String.length s > pl + 1
          && String.sub s 0 pl = prefix
          && s.[pl] = '('
          && s.[String.length s - 1] = ')'
        then Some (String.sub s (pl + 1) (String.length s - pl - 2))
        else None
      in
      (match with_args "ID" with
       | Some t -> Domain.Id_of t
       | None -> begin
         match with_args "ENUM" with
         | Some cs -> Domain.Enum (String.split_on_char ',' cs)
         | None -> begin
           match with_args "LIST" with
           | Some d -> Domain.List_of (go d)
           | None -> Err.failf "line %d: unknown domain %s" lineno s
         end
       end)
  in
  go s

let parse_card lineno s =
  match String.split_on_char ':' s with
  | [ l; r ] ->
    let side = function
      | "n" | "m" -> None
      | k -> (
        match int_of_string_opt k with
        | Some k -> Some k
        | None -> Err.failf "line %d: bad cardinality %s" lineno s)
    in
    (side l, side r)
  | _ -> Err.failf "line %d: bad cardinality %s" lineno s

let rec parse_value lineno s =
  if s = "" then Err.failf "line %d: empty value" lineno
  else if s.[0] = '\'' then begin
    if String.length s < 2 || s.[String.length s - 1] <> '\'' then
      Err.failf "line %d: bad string %s" lineno s;
    let inner = String.sub s 1 (String.length s - 2) in
    (* unescape '' *)
    let buf = Buffer.create (String.length inner) in
    let rec go i =
      if i < String.length inner then
        if inner.[i] = '\'' && i + 1 < String.length inner && inner.[i + 1] = '\''
        then begin
          Buffer.add_char buf '\'';
          go (i + 2)
        end
        else begin
          Buffer.add_char buf inner.[i];
          go (i + 1)
        end
    in
    go 0;
    Value.String (Buffer.contents buf)
  end
  else if s.[0] = '@' then
    Value.Id (int_of_string (String.sub s 1 (String.length s - 1)))
  else if s.[0] = '[' then begin
    let inner = String.sub s 1 (String.length s - 2) in
    if String.trim inner = "" then Value.List []
    else
      Value.List
        (List.map (parse_value lineno) (String.split_on_char ';' inner))
  end
  else if s = "true" then Value.Bool true
  else if s = "false" then Value.Bool false
  else
    match int_of_string_opt s with
    | Some i -> Value.Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Value.Float f
      | None -> Err.failf "line %d: unreadable value %s" lineno s)

let parse_id lineno s =
  if String.length s > 1 && s.[0] = '@' then
    int_of_string (String.sub s 1 (String.length s - 1))
  else Err.failf "line %d: expected @id, got %s" lineno s

(** Load a database from dump text.  With [file], parse errors are
    prefixed with the file name, so that multi-file recovery (snapshot
    plus write-ahead log) can say {e which} file is damaged. *)
let load ?file text =
  let in_file f = try f () with
    | Err.Mad_error msg ->
      (match file with
       | None -> raise (Err.Mad_error msg)
       | Some name -> Err.failf "%s: %s" name msg)
  in
  in_file @@ fun () ->
  let db = Database.create () in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        match split_line line lineno with
        | "atomtype" :: name :: attrs ->
          let attrs =
            List.map
              (fun spec ->
                match String.index_opt spec ':' with
                | Some i ->
                  Schema.Attr.v
                    (String.sub spec 0 i)
                    (parse_domain lineno
                       (String.sub spec (i + 1) (String.length spec - i - 1)))
                | None ->
                  Err.failf "line %d: bad attribute spec %s" lineno spec)
              attrs
          in
          ignore (Database.declare_atom_type db name attrs)
        | [ "linktype"; name; e1; e2; card ] ->
          ignore
            (Database.declare_link_type db
               ~card:(parse_card lineno card)
               name (e1, e2))
        | "atom" :: atype :: id :: values ->
          ignore
            (Database.insert_atom_exact db ~atype ~id:(parse_id lineno id)
               (List.map (parse_value lineno) values))
        | [ "link"; lt; l; r ] ->
          Database.add_link db lt ~left:(parse_id lineno l)
            ~right:(parse_id lineno r)
        | word :: _ -> Err.failf "line %d: unknown directive %s" lineno word
        | [] -> ())
    lines;
  db

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> load ~file:(Filename.basename path) (In_channel.input_all ic))
