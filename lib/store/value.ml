(** Attribute values.

    A closed sum of the attribute data types used throughout the paper's
    examples (names, measures, coordinates, ...) plus typed atom
    references ([Id]) and homogeneous lists, which the MAD model admits
    as "attributes of various data types" (Def. 1). *)

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | String of string
  | Id of Aid.t
  | List of t list

let rec compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | String x, String y -> String.compare x y
  | Id x, Id y -> Aid.compare x y
  | List x, List y -> List.compare compare x y
  | Int _, _ -> -1 | _, Int _ -> 1
  | Float _, _ -> -1 | _, Float _ -> 1
  | Bool _, _ -> -1 | _, Bool _ -> 1
  | String _, _ -> -1 | _, String _ -> 1
  | Id _, _ -> -1 | _, Id _ -> 1

let equal a b = compare a b = 0

let rec pp ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.string ppf (string_of_float f)
  | Bool b -> Fmt.bool ppf b
  | String s -> Fmt.pf ppf "'%s'" s
  | Id id -> Aid.pp ppf id
  | List vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") pp) vs

let to_string v = Format.asprintf "%a" pp v

(** Numeric view used by comparison predicates: ints and floats compare
    across the two representations ([Int 1] = [Float 1.0]). *)
let as_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool _ | String _ | Id _ | List _ -> None

(** Total order used by qualification formulas: numerics compare
    numerically across [Int]/[Float]; everything else falls back to the
    structural order. *)
let compare_sem a b =
  match as_float a, as_float b with
  | Some x, Some y -> Float.compare x y
  | _ -> compare a b

let equal_sem a b = compare_sem a b = 0

let type_name = function
  | Int _ -> "int"
  | Float _ -> "float"
  | Bool _ -> "bool"
  | String _ -> "string"
  | Id _ -> "id"
  | List _ -> "list"
