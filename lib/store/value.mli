(** Attribute values: the closed sum of attribute data types (Def. 1
    admits "attributes of various data types"), including typed atom
    references and homogeneous lists. *)

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | String of string
  | Id of Aid.t
  | List of t list

val compare : t -> t -> int
(** Total structural order (constructor-ranked). *)

val equal : t -> t -> bool

val compare_sem : t -> t -> int
(** Semantic order used by qualification formulas: numerics compare
    across [Int]/[Float]; everything else structurally. *)

val equal_sem : t -> t -> bool

val as_float : t -> float option
(** Numeric view of [Int]/[Float]; [None] otherwise. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val type_name : t -> string
(** The constructor's name, for diagnostics. *)
