(** Paper-notation rendering of the formal database specification.

    Regenerates Fig. 4 ("Formal specification of the geographic
    database") from a live catalog: atom types as
    [<name,{attrs},{atoms}> ∈ AT*], link types as
    [<name,{end1,end2},{links}> ∈ LT*], and the database as
    [<{atom types},{link types}> ∈ DB*]. *)

let pp_atom_type ?(max_atoms = 4) ppf db atname =
  let at = Database.atom_type db atname in
  let atoms = Database.atoms db atname in
  let shown = List.filteri (fun i _ -> i < max_atoms) atoms in
  let elided = List.length atoms - List.length shown in
  let pp_atom ppf (a : Atom.t) =
    Fmt.pf ppf "<%a>" Fmt.(array ~sep:(any ",") Value.pp) a.values
  in
  Fmt.pf ppf "%s = <%s,{%a},{%a%s}> ∈ AT*" atname atname
    Fmt.(list ~sep:(any ",") Schema.Attr.pp)
    at.attrs
    Fmt.(list ~sep:(any ",") pp_atom)
    shown
    (if elided > 0 then Printf.sprintf ",... (%d more)" elided else "")

let pp_link_type ?(max_links = 4) ppf db ltname =
  let lt = Database.link_type db ltname in
  let links = Database.links db ltname in
  let shown = List.filteri (fun i _ -> i < max_links) links in
  let elided = List.length links - List.length shown in
  let pp_pair ppf (l, r) = Fmt.pf ppf "<%a,%a>" Aid.pp l Aid.pp r in
  Fmt.pf ppf "%s = <%s,{%s,%s},{%a%s}> ∈ LT*" ltname ltname (fst lt.ends)
    (snd lt.ends)
    Fmt.(list ~sep:(any ",") pp_pair)
    shown
    (if elided > 0 then Printf.sprintf ",... (%d more)" elided else "")

let pp_database ?(name = "DB") ppf db =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun at -> Fmt.pf ppf "%a@," (fun ppf -> pp_atom_type ppf db) at)
    (Database.atom_type_names db);
  Fmt.pf ppf "@,";
  List.iter
    (fun lt -> Fmt.pf ppf "%a@," (fun ppf -> pp_link_type ppf db) lt)
    (Database.link_type_names db);
  Fmt.pf ppf "@,%s = <{%a}, {%a}> ∈ DB*@]" name
    Fmt.(list ~sep:(any ", ") string)
    (Database.atom_type_names db)
    Fmt.(list ~sep:(any ", ") string)
    (Database.link_type_names db)

let database_to_string ?name db =
  Format.asprintf "%a" (fun ppf -> pp_database ?name ppf) db
