(** Schema-level descriptions: atom types and link types (Defs. 1-2).

    Links are nondirectional (Def. 2's unsorted pair), but each link
    type distinguishes its two ends by {e role} so that reflexive link
    types can tell the super-component end from the sub-component end
    (the bill-of-material example of ch. 3.1).  The [card] field
    realises the "extended link-type definition" cardinality
    restrictions: [(Some 1, None)] is 1:n, [(None, None)] is n:m. *)

module Attr : sig
  type t = { name : string; domain : Domain.t }

  val v : string -> Domain.t -> t
  val pp : Format.formatter -> t -> unit
  val equal : t -> t -> bool
end

module Atom_type : sig
  type t = { name : string; attrs : Attr.t list }

  val v : string -> Attr.t list -> t
  (** Build a description; fails on duplicate attribute names. *)

  val arity : t -> int

  val attr_index : t -> string -> int
  (** Position of the named attribute; fails if absent. *)

  val has_attr : t -> string -> bool
  val attr_domain : t -> string -> Domain.t

  val same_description : t -> t -> bool
  (** Def. 4's [ad1 = ad2]: same attributes with same domains in the
      same order, regardless of the type name. *)

  val pp : Format.formatter -> t -> unit
end

module Link_type : sig
  type cardinality = int option * int option
  (** [(max_left, max_right)]: [max_left] bounds how many links an atom
      of the {e right} end may carry, [max_right] bounds the left end's
      atoms.  [None] = unbounded. *)

  type t = {
    name : string;
    ends : string * string;  (** the two atom-type names; may coincide *)
    card : cardinality;
  }

  val v : ?card:cardinality -> string -> string * string -> t
  val reflexive : t -> bool

  val role_of : t -> string -> [ `Left | `Right | `Both | `None ]
  (** Which end(s) the given atom type plays. *)

  val touches : t -> string -> bool

  val other_end : t -> string -> string
  (** The atom type at the other end when traversing from the given
      type; fails if the type is not an end. *)

  val pp_card : Format.formatter -> cardinality -> unit
  val pp : Format.formatter -> t -> unit
end
