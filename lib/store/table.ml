(** Plain-text table rendering, used by the benchmark harness and the
    examples to print the rows/series each experiment reproduces. *)

type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    Err.failf "table row has %d cells, header has %d" (List.length row)
      (List.length t.headers);
  t.rows <- row :: t.rows

let addf t fmts = add_row t fmts

let widths t =
  let all = t.headers :: List.rev t.rows in
  List.fold_left
    (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
    (List.map (fun _ -> 0) t.headers)
    all

let pad w s = s ^ String.make (max 0 (w - String.length s)) ' '

let pp ppf t =
  let ws = widths t in
  let line row = String.concat "  " (List.map2 pad ws row) in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') ws) in
  Fmt.pf ppf "%s@." (line t.headers);
  Fmt.pf ppf "%s@." rule;
  List.iter (fun r -> Fmt.pf ppf "%s@." (line r)) (List.rev t.rows)

let print t = Format.printf "%a" pp t
