(** Plain-text table rendering for the experiment harness. *)

type t

val create : string list -> t
(** [create headers] *)

val add_row : t -> string list -> unit
(** Fails if the row width differs from the header's. *)

val addf : t -> string list -> unit
val pp : Format.formatter -> t -> unit
val print : t -> unit
