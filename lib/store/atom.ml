(** Atoms: the basic building blocks of the MAD model (Def. 1).

    An atom is a uniquely identified element of an atom-type occurrence:
    an identity plus one value per attribute of the owning atom-type
    description. *)

type t = {
  id : Aid.t;
  atype : string;  (** name of the owning atom type *)
  values : Value.t array;
}

let v ~id ~atype values = { id; atype; values = Array.of_list values }

let value_by_index a i =
  if i < 0 || i >= Array.length a.values then
    Err.failf "atom %s of type %s: attribute index %d out of range"
      (Aid.to_string a.id) a.atype i
  else a.values.(i)

let value a (at : Schema.Atom_type.t) aname =
  value_by_index a (Schema.Atom_type.attr_index at aname)

(** Value-level equality; identity is *not* part of it.  Two distinct
    atoms may be value-equal (identity is model-level). *)
let same_values a b =
  Array.length a.values = Array.length b.values
  && Array.for_all2 Value.equal a.values b.values

let pp ppf a =
  Fmt.pf ppf "<%a|%a>" Aid.pp a.id
    Fmt.(array ~sep:(any ",") Value.pp)
    a.values

let pp_named (at : Schema.Atom_type.t) ppf a =
  let pp_binding ppf ((attr : Schema.Attr.t), v) =
    Fmt.pf ppf "%s=%a" attr.name Value.pp v
  in
  Fmt.pf ppf "%a<%a>" Aid.pp a.id
    (Fmt.list ~sep:(Fmt.any ", ") pp_binding)
    (List.combine at.attrs (Array.to_list a.values))
