(** Graphviz DOT export: the MAD diagram (schema) and the atom networks
    (occurrence) of Fig. 1. *)

val schema : Format.formatter -> Database.t -> unit
val occurrence : Format.formatter -> Database.t -> unit
val schema_to_string : Database.t -> string
val occurrence_to_string : Database.t -> string
