(** Atoms: uniquely identified elements of an atom-type occurrence
    (Def. 1). *)

type t = {
  id : Aid.t;
  atype : string;  (** name of the owning atom type *)
  values : Value.t array;  (** one value per attribute, in order *)
}

val v : id:Aid.t -> atype:string -> Value.t list -> t

val value_by_index : t -> int -> Value.t
val value : t -> Schema.Atom_type.t -> string -> Value.t

val same_values : t -> t -> bool
(** Value-level equality; identity is not part of it. *)

val pp : Format.formatter -> t -> unit
val pp_named : Schema.Atom_type.t -> Format.formatter -> t -> unit
