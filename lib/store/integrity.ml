(** Database integrity checking.

    The paper contrasts the relational model's referential-integrity
    problem with MAD's structural guarantee ("referential integrity (!)",
    Fig. 3; "There are no dangling references (i.e. links) and it is
    even possible to control cardinality restrictions").  The store
    enforces these invariants eagerly; this module *re-verifies* them
    over a whole database, which is how tests catch any operation that
    would break them, and how deliberately corrupted databases are
    diagnosed (failure-injection tests). *)

type violation =
  | Dangling_link of { lt : string; left : Aid.t; right : Aid.t; missing : Aid.t }
  | Wrong_end_type of { lt : string; atom : Aid.t; expected : string; actual : string }
  | Cardinality of { lt : string; atom : Aid.t; limit : int; actual : int }
  | Domain_violation of { atype : string; atom : Aid.t; attr : string; value : Value.t }
  | Arity_mismatch of { atype : string; atom : Aid.t; expected : int; actual : int }
  | Index_mismatch of { lt : string; detail : string }

let pp_violation ppf = function
  | Dangling_link { lt; left; right; missing } ->
    Fmt.pf ppf "dangling link <%a,%a> of %s: atom %a does not exist"
      Aid.pp left Aid.pp right lt Aid.pp missing
  | Wrong_end_type { lt; atom; expected; actual } ->
    Fmt.pf ppf "link type %s: atom %a has type %s, expected %s" lt Aid.pp
      atom actual expected
  | Cardinality { lt; atom; limit; actual } ->
    Fmt.pf ppf "link type %s: atom %a carries %d links, limit %d" lt Aid.pp
      atom actual limit
  | Domain_violation { atype; atom; attr; value } ->
    Fmt.pf ppf "atom %a of %s: attribute %s holds %a outside its domain"
      Aid.pp atom atype attr Value.pp value
  | Arity_mismatch { atype; atom; expected; actual } ->
    Fmt.pf ppf "atom %a of %s: %d values, description has %d attributes"
      Aid.pp atom atype actual expected
  | Index_mismatch { lt; detail } ->
    Fmt.pf ppf "link type %s: adjacency index inconsistent (%s)" lt detail

let check_atoms db acc =
  List.fold_left
    (fun acc atname ->
      let at = Database.atom_type db atname in
      let arity = Schema.Atom_type.arity at in
      List.fold_left
        (fun acc (a : Atom.t) ->
          if Array.length a.values <> arity then
            Arity_mismatch
              { atype = atname; atom = a.id; expected = arity;
                actual = Array.length a.values }
            :: acc
          else
            List.fold_left
              (fun acc ((attr : Schema.Attr.t), v) ->
                if Domain.mem v attr.domain then acc
                else
                  Domain_violation
                    { atype = atname; atom = a.id; attr = attr.name; value = v }
                  :: acc)
              acc
              (List.combine at.attrs (Array.to_list a.values)))
        acc (Database.atoms db atname))
    acc
    (Database.atom_type_names db)

let check_links db acc =
  List.fold_left
    (fun acc ltname ->
      let lt = Database.link_type db ltname in
      let e1, e2 = lt.ends in
      let ids1 = Database.atom_ids db e1 and ids2 = Database.atom_ids db e2 in
      let acc =
        List.fold_left
          (fun acc (left, right) ->
            let acc =
              if Aid.Set.mem left ids1 then acc
              else
                Dangling_link { lt = ltname; left; right; missing = left } :: acc
            in
            if Aid.Set.mem right ids2 then acc
            else Dangling_link { lt = ltname; left; right; missing = right } :: acc)
          acc (Database.links db ltname)
      in
      (* cardinality restrictions *)
      let max_l, max_r = lt.card in
      let count_by sel =
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun pair ->
            let k = sel pair in
            Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
          (Database.links db ltname);
        tbl
      in
      let acc =
        match max_r with
        | None -> acc
        | Some k ->
          Hashtbl.fold
            (fun atom n acc ->
              if n > k then
                Cardinality { lt = ltname; atom; limit = k; actual = n } :: acc
              else acc)
            (count_by fst) acc
      in
      match max_l with
      | None -> acc
      | Some k ->
        Hashtbl.fold
          (fun atom n acc ->
            if n > k then
              Cardinality { lt = ltname; atom; limit = k; actual = n } :: acc
            else acc)
          (count_by snd) acc)
    acc
    (Database.link_type_names db)

let check_index db acc =
  List.fold_left
    (fun acc ltname ->
      let pairs = Database.links db ltname in
      let via_index =
        List.concat_map
          (fun (l, _) ->
            let partners = ref [] in
            Database.iter_neighbors db ltname ~dir:`Fwd l (fun r ->
                partners := (l, r) :: !partners);
            !partners)
          pairs
        |> List.sort_uniq compare
      in
      let direct = List.sort_uniq compare pairs in
      if List.equal (fun a b -> compare a b = 0) via_index direct then acc
      else
        Index_mismatch
          { lt = ltname;
            detail =
              Printf.sprintf "index yields %d pairs, store has %d"
                (List.length via_index) (List.length direct) }
        :: acc)
    acc
    (Database.link_type_names db)

(** Full check; returns all violations (empty list = healthy database,
    i.e. a member of the database domain). *)
let check db = [] |> check_atoms db |> check_links db |> check_index db |> List.rev

let is_valid db = check db = []

let assert_valid db =
  match check db with
  | [] -> ()
  | v :: _ -> Err.failf "integrity violation: %a" pp_violation v
