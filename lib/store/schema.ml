(** Schema-level descriptions: atom types and link types (Defs. 1-2).

    An atom-type description [ad] is an ordered sequence of attribute
    descriptions.  A link-type description [ld] names the two atom types
    it connects.  Links are *nondirectional* (Def. 2: "l is an unsorted
    pair"); nevertheless each link type distinguishes its two ends by
    *role* so that reflexive link types (both ends on the same atom
    type, e.g. the bill-of-material [composition]) can tell the
    super-component end from the sub-component end — exactly the
    "super-component view vs. sub-component view" of the paper.  For
    non-reflexive link types the role is forced by the endpoint atom
    types, so the pair remains semantically unsorted.

    The paper's "extended link-type definition" mentions cardinality
    restrictions; [card] realises them: [max_left] bounds how many links
    any single atom of the *right* end may carry towards the left end,
    and vice versa.  [n:m] is [(None, None)], [1:n] is
    [(Some 1, None)], [1:1] is [(Some 1, Some 1)]. *)

module Attr = struct
  type t = { name : string; domain : Domain.t }

  let v name domain = { name; domain }
  let pp ppf a = Fmt.pf ppf "%s:%a" a.name Domain.pp a.domain
  let equal a b = String.equal a.name b.name && Domain.equal a.domain b.domain
end

module Atom_type = struct
  type t = { name : string; attrs : Attr.t list }

  let v name attrs =
    let names = List.map (fun (a : Attr.t) -> a.name) attrs in
    let dup =
      List.exists
        (fun n -> List.length (List.filter (String.equal n) names) > 1)
        names
    in
    if dup then Err.failf "atom type %s: duplicate attribute name" name;
    { name; attrs }

  let arity at = List.length at.attrs

  let attr_index at aname =
    let rec go i = function
      | [] -> Err.failf "atom type %s has no attribute %s" at.name aname
      | (a : Attr.t) :: rest ->
        if String.equal a.name aname then i else go (i + 1) rest
    in
    go 0 at.attrs

  let has_attr at aname =
    List.exists (fun (a : Attr.t) -> String.equal a.name aname) at.attrs

  let attr_domain at aname =
    (List.nth at.attrs (attr_index at aname)).domain

  (** Description equality in the sense of Def. 4's [ad1 = ad2]
      (union/difference require identically described operands):
      same attributes with same domains, in the same order, regardless
      of the type name. *)
  let same_description a b = List.equal Attr.equal a.attrs b.attrs

  let pp ppf at =
    Fmt.pf ppf "%s(%a)" at.name Fmt.(list ~sep:(any ", ") Attr.pp) at.attrs
end

module Link_type = struct
  type cardinality = int option * int option

  type t = {
    name : string;
    ends : string * string;  (** the two atom-type names; may coincide *)
    card : cardinality;
  }

  let v ?(card = (None, None)) name ends = { name; ends; card }

  let reflexive lt = String.equal (fst lt.ends) (snd lt.ends)

  (** [role_of lt at] tells which end(s) atom type [at] plays in [lt]. *)
  let role_of lt at =
    match String.equal at (fst lt.ends), String.equal at (snd lt.ends) with
    | true, true -> `Both
    | true, false -> `Left
    | false, true -> `Right
    | false, false -> `None

  let touches lt at = role_of lt at <> `None

  (** The atom type at the other end when traversing from [at]; for a
      reflexive link type this is [at] itself. *)
  let other_end lt at =
    match role_of lt at with
    | `Left -> snd lt.ends
    | `Right -> fst lt.ends
    | `Both -> at
    | `None -> Err.failf "link type %s does not touch atom type %s" lt.name at

  let pp_card ppf = function
    | None, None -> Fmt.string ppf "n:m"
    | Some 1, None -> Fmt.string ppf "1:n"
    | None, Some 1 -> Fmt.string ppf "n:1"
    | Some 1, Some 1 -> Fmt.string ppf "1:1"
    | l, r ->
      let side ppf = function None -> Fmt.string ppf "n" | Some k -> Fmt.int ppf k in
      Fmt.pf ppf "%a:%a" side l side r

  let pp ppf lt =
    Fmt.pf ppf "%s{%s,%s}[%a]" lt.name (fst lt.ends) (snd lt.ends)
      pp_card lt.card
end
