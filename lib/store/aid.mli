(** Atom identities.

    The MAD model requires every atom to be "uniquely identifiable"
    (Def. 1); identity is model-level, not value-based.  Realised as an
    integer unique within one database. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val pp_set : Format.formatter -> Set.t -> unit
