(** Attribute domains.

    Each attribute of an atom-type description draws its values from a
    domain (Def. 1: "the cartesian product of the attribute domains
    used").  [Id_of at] is the domain of references to atoms of atom
    type [at]; [Enum] is a finite string domain. *)

type t =
  | Int
  | Float
  | Bool
  | String
  | Id_of of string
  | Enum of string list
  | List_of of t

let rec pp ppf = function
  | Int -> Fmt.string ppf "INT"
  | Float -> Fmt.string ppf "FLOAT"
  | Bool -> Fmt.string ppf "BOOL"
  | String -> Fmt.string ppf "STRING"
  | Id_of at -> Fmt.pf ppf "ID(%s)" at
  | Enum cs -> Fmt.pf ppf "ENUM(%a)" Fmt.(list ~sep:(any ",") string) cs
  | List_of d -> Fmt.pf ppf "LIST(%a)" pp d

let to_string d = Format.asprintf "%a" pp d

let rec equal a b =
  match a, b with
  | Int, Int | Float, Float | Bool, Bool | String, String -> true
  | Id_of x, Id_of y -> String.equal x y
  | Enum x, Enum y -> List.equal String.equal x y
  | List_of x, List_of y -> equal x y
  | (Int | Float | Bool | String | Id_of _ | Enum _ | List_of _), _ -> false

(** Domain membership: does value [v] belong to domain [d]?  [Id_of]
    checks only the value shape; referential validity is the business of
    {!Integrity}. *)
let rec mem v d =
  match v, d with
  | Value.Int _, Int -> true
  | Value.Float _, Float -> true
  | Value.Bool _, Bool -> true
  | Value.String _, String -> true
  | Value.Id _, Id_of _ -> true
  | Value.String s, Enum cs -> List.mem s cs
  | Value.List vs, List_of d' -> List.for_all (fun v -> mem v d') vs
  | ( Value.Int _ | Value.Float _ | Value.Bool _ | Value.String _
    | Value.Id _ | Value.List _ ), _ -> false

(** A representative default value, used by generators and by padding
    when loading partial data. *)
let rec default = function
  | Int -> Value.Int 0
  | Float -> Value.Float 0.
  | Bool -> Value.Bool false
  | String -> Value.String ""
  | Id_of _ -> Value.Id 0
  | Enum (c :: _) -> Value.String c
  | Enum [] -> Value.String ""
  | List_of d -> ignore (default d); Value.List []
