(** Database-domain membership checking: referential integrity (the
    "referential integrity (!)" of Fig. 3), endpoint types, cardinality
    restrictions, attribute domains and index consistency. *)

type violation =
  | Dangling_link of { lt : string; left : Aid.t; right : Aid.t; missing : Aid.t }
  | Wrong_end_type of { lt : string; atom : Aid.t; expected : string; actual : string }
  | Cardinality of { lt : string; atom : Aid.t; limit : int; actual : int }
  | Domain_violation of { atype : string; atom : Aid.t; attr : string; value : Value.t }
  | Arity_mismatch of { atype : string; atom : Aid.t; expected : int; actual : int }
  | Index_mismatch of { lt : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val check : Database.t -> violation list
(** All violations; empty = the database is a member of the database
    domain. *)

val is_valid : Database.t -> bool

val assert_valid : Database.t -> unit
(** Raise {!Err.Mad_error} on the first violation. *)
