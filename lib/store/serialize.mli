(** Plain-text persistence of databases (.mad files): line-oriented,
    human-readable, identity-preserving (links reference atom
    identities). *)

val dump : Database.t -> string
val dump_file : Database.t -> string -> unit

val load : ?file:string -> string -> Database.t
(** Parse dump text; fails with a line-numbered {!Err.Mad_error} on
    malformed input, unknown names, domain violations or duplicate
    identities.  With [file], the error is prefixed with the file
    name, so recovery diagnostics can say whether the snapshot or the
    write-ahead log is damaged. *)

val load_file : string -> Database.t
(** {!load} with [file] set to the path's basename. *)

(** {1 Textual building blocks}

    The word-level codec of the dump format, exported for other
    line-oriented formats over the same value syntax (the write-ahead
    log's record payloads).  The [int] parameter of each parser is the
    line (or record) number quoted in error messages. *)

val value_to_string : Value.t -> string
val parse_value : int -> string -> Value.t
val domain_to_string : Domain.t -> string
val parse_domain : int -> string -> Domain.t
val card_to_string : Schema.Link_type.cardinality -> string
val parse_card : int -> string -> Schema.Link_type.cardinality
val parse_id : int -> string -> Aid.t

val split_line : string -> int -> string list
(** Split a line into words, respecting single-quoted strings and
    bracketed lists. *)
