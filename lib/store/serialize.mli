(** Plain-text persistence of databases (.mad files): line-oriented,
    human-readable, identity-preserving (links reference atom
    identities). *)

val dump : Database.t -> string
val dump_file : Database.t -> string -> unit

val load : string -> Database.t
(** Parse dump text; fails with a line-numbered {!Err.Mad_error} on
    malformed input, unknown names, domain violations or duplicate
    identities. *)

val load_file : string -> Database.t
