(** Unified error reporting for the MAD system. *)

exception Mad_error of string
(** Raised for every user-level error: schema violations, unknown
    names, invalid molecule descriptions, malformed MOL, ... *)

val failf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [failf fmt ...] raises {!Mad_error} with the formatted message. *)

val check : bool -> string -> unit
(** [check cond msg] raises [Mad_error msg] when [cond] is false. *)

val to_result : (unit -> 'a) -> ('a, string) result
(** Run a computation, turning {!Mad_error} into [Error]. *)
