(** Atom identities.

    The MAD model requires every atom to be "uniquely identifiable"
    (Def. 1).  Identity is model-level, not value-based: two atoms with
    equal attribute values are still distinct.  We realise identity as
    an integer that is unique within one database; the owning atom type
    is recorded on the atom itself ({!Atom.t}). *)

type t = int

let compare = Int.compare
let equal = Int.equal
let hash = Fun.id
let pp ppf id = Fmt.pf ppf "@%d" id
let to_string id = Format.asprintf "%a" pp id

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let pp_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") pp) (Set.elements s)
