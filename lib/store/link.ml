(** Links: occurrence-level connections between two atoms (Def. 2).

    A link of link type [lt = <lname,{at1,at2},lv>] connects an atom of
    [at1] with an atom of [at2].  [left] is the atom playing the
    [at1] (first-end) role, [right] the [at2] role.  For non-reflexive
    link types this normalisation makes the pair behave as the paper's
    unsorted pair; for reflexive link types the roles carry the
    super-/sub-component distinction (see {!Schema.Link_type}). *)

type t = { lt : string; left : Aid.t; right : Aid.t }

let v lt left right = { lt; left; right }

let compare a b =
  let c = String.compare a.lt b.lt in
  if c <> 0 then c
  else
    let c = Aid.compare a.left b.left in
    if c <> 0 then c else Aid.compare a.right b.right

let equal a b = compare a b = 0

let pp ppf l = Fmt.pf ppf "<%a,%a>:%s" Aid.pp l.left Aid.pp l.right l.lt

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let pp_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") pp) (Set.elements s)
