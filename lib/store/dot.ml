(** Graphviz DOT export of schemas (MAD diagrams, Fig. 1 middle) and
    atom networks (Fig. 1 bottom). *)

let esc s =
  String.concat ""
    (List.map
       (fun c ->
         match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(** The MAD diagram: atom types as boxes, link types as undirected
    edges (bidirectional link pairs). *)
let schema ppf db =
  Fmt.pf ppf "graph mad_schema {@.";
  Fmt.pf ppf "  node [shape=box];@.";
  List.iter
    (fun at -> Fmt.pf ppf "  \"%s\";@." (esc at))
    (Database.atom_type_names db);
  List.iter
    (fun ln ->
      let lt = Database.link_type db ln in
      Fmt.pf ppf "  \"%s\" -- \"%s\" [label=\"%s\"];@."
        (esc (fst lt.ends)) (esc (snd lt.ends)) (esc ln))
    (Database.link_type_names db);
  Fmt.pf ppf "}@."

(** The atom networks: atoms as nodes labelled with their first
    attribute value (if any), links as undirected edges. *)
let occurrence ppf db =
  Fmt.pf ppf "graph atom_networks {@.";
  Fmt.pf ppf "  node [shape=ellipse];@.";
  List.iter
    (fun atname ->
      List.iter
        (fun (a : Atom.t) ->
          let label =
            if Array.length a.values > 0 then
              Printf.sprintf "%s %s" atname (Value.to_string a.values.(0))
            else atname
          in
          Fmt.pf ppf "  a%d [label=\"%s\"];@." a.id (esc label))
        (Database.atoms db atname))
    (Database.atom_type_names db);
  List.iter
    (fun ln ->
      List.iter
        (fun (l, r) -> Fmt.pf ppf "  a%d -- a%d [label=\"%s\"];@." l r (esc ln))
        (Database.links db ln))
    (Database.link_type_names db);
  Fmt.pf ppf "}@."

let schema_to_string db = Format.asprintf "%a" schema db
let occurrence_to_string db = Format.asprintf "%a" occurrence db
