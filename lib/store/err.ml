(** Unified error reporting for the MAD system.

    All MAD libraries raise [Mad_error] for user-level errors (schema
    violations, unknown names, invalid molecule descriptions, ...).
    Programming errors keep using [Invalid_argument]/[assert]. *)

exception Mad_error of string

let failf fmt = Format.kasprintf (fun s -> raise (Mad_error s)) fmt

(** [check cond msg] raises [Mad_error msg] when [cond] is false. *)
let check cond msg = if not cond then raise (Mad_error msg)

let to_result f = match f () with
  | v -> Ok v
  | exception Mad_error msg -> Error msg
