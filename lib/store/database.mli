(** The database: a set of atom types plus a set of link types whose
    occurrences form the atom networks (Def. 3).

    Mutable — operations of both algebras {e enlarge} the database
    (Def. 9, Theorem 1) — and indexed: every link type maintains a
    bidirectional adjacency index, the operational realisation of the
    paper's symmetric link concept.

    The representation is exposed (the failure-injection tests corrupt
    it deliberately); normal clients use the functions only. *)

module Pair : sig
  type t = Aid.t * Aid.t

  val compare : t -> t -> int
end

module Pair_set : Set.S with type elt = Pair.t

type atom_table = {
  at : Schema.Atom_type.t;
  atoms : (Aid.t, Atom.t) Hashtbl.t;
  mutable ids : Aid.Set.t;
}

type link_store = {
  lt : Schema.Link_type.t;
  mutable pairs : Pair_set.t;  (** (left-role atom, right-role atom) *)
  fwd : (Aid.t, Aid.Set.t) Hashtbl.t;
  bwd : (Aid.t, Aid.Set.t) Hashtbl.t;
}

(** The logical operations that change a database — the journal
    vocabulary.  One [op] is atomic (a [delete_atom] cascade is a
    single op; replay re-runs the cascade), which is what makes a log
    of them a write-ahead log: the durability engine appends each op
    as one checksummed record and replays the sequence on recovery. *)
type op =
  | Op_define_atom_type of Schema.Atom_type.t
  | Op_define_link_type of Schema.Link_type.t
  | Op_drop_atom_type of string
  | Op_drop_link_type of string
  | Op_insert_atom of { atype : string; id : Aid.t; values : Value.t list }
  | Op_delete_atom of { atype : string; id : Aid.t }
      (** carries the (already removed) atom's type so op-stream
          observers can account the deletion per atom type *)
  | Op_add_link of { lt : string; left : Aid.t; right : Aid.t }
  | Op_remove_link of { lt : string; left : Aid.t; right : Aid.t }
  | Op_set_attr of { atype : string; id : Aid.t; index : int; value : Value.t }

type t = {
  mutable next_id : int;
  atom_tables : (string, atom_table) Hashtbl.t;
  link_stores : (string, link_store) Hashtbl.t;
  mutable journal : (op -> unit) option;
      (** Called after each successful mutation, never for rejected
          ones; installed by the durability engine, [None] otherwise. *)
  mutable taps : (int -> op -> unit) list;
      (** Op-stream observers (see {!add_tap}). *)
  mutable epoch : int;
      (** Monotonic mutation epoch (see {!epoch}). *)
}

val create : unit -> t
val fresh_id : t -> Aid.t

val epoch : t -> int
(** The mutation epoch: bumped once per successful logical mutation
    (delete cascades bump once per sub-removal too).  Read-only derived
    structures — the derivation kernel's CSR snapshots — are keyed by
    [(database, epoch)] and rebuild when the epoch has moved. *)

val set_journal : t -> (op -> unit) option -> unit
(** Install (or remove) the journal hook.  Rejected operations — domain
    violations, cardinality overflows, duplicate identities — never
    reach it, and idempotent no-ops (re-adding an existing link,
    removing an absent one) are not re-journaled. *)

val add_tap : t -> (int -> op -> unit) -> unit
(** Register an op-stream observer, called as [f epoch op] after every
    successful mutation with the epoch that mutation produced — {e
    including} cascade sub-ops and {!unjournaled} scratch mutations,
    which the journal never sees.  Taps run before the journal hook
    and cannot be removed (they live as long as the database); they
    exist for delta maintenance of derived structures
    ([Mad_kernel.Delta]), which must observe every epoch movement or
    fall back to a rebuild.  A tap must not mutate the database. *)

val unjournaled : t -> (unit -> 'a) -> 'a
(** Run [f] with the journal hook detached (restored on exit, even on
    raise).  The algebra layers use this for the {e enlarged database}:
    derived result types and their propagated occurrences are scratch
    state that queries rebuild on demand, so they must not reach a
    write-ahead log. *)

(** {1 Schema} *)

val has_atom_type : t -> string -> bool
val has_link_type : t -> string -> bool
val define_atom_type : t -> Schema.Atom_type.t -> Schema.Atom_type.t
val declare_atom_type : t -> string -> Schema.Attr.t list -> Schema.Atom_type.t
val define_link_type : t -> Schema.Link_type.t -> Schema.Link_type.t

val declare_link_type :
  ?card:Schema.Link_type.cardinality ->
  t ->
  string ->
  string * string ->
  Schema.Link_type.t

val atom_table : t -> string -> atom_table
val link_store : t -> string -> link_store
val atom_type : t -> string -> Schema.Atom_type.t
val link_type : t -> string -> Schema.Link_type.t

val atom_type_names : t -> string list
(** Sorted; iteration over these names is deterministic. *)

val link_type_names : t -> string list

val incident_link_types : t -> string -> Schema.Link_type.t list
(** Link types touching the named atom type — the basis of link
    inheritance (Def. 4). *)

val link_types_between : t -> string -> string -> Schema.Link_type.t list
(** Link types between the unordered pair of atom types; resolves the
    ['-'] shorthand of ch. 4's MOL. *)

val drop_atom_type : t -> string -> unit
(** Remove the type, its atoms and every incident link type. *)

val drop_link_type : t -> string -> unit

(** {1 Atom occurrence} *)

val check_values : Schema.Atom_type.t -> Value.t list -> unit
val insert_atom : t -> atype:string -> Value.t list -> Atom.t
val insert_atom_values : t -> atype:string -> Value.t array -> Atom.t

val insert_atom_exact : t -> atype:string -> id:Aid.t -> Value.t list -> Atom.t
(** Insert under a caller-chosen identity (dump loading); fails if the
    identity is taken. *)

val find_atom : t -> Aid.t -> Atom.t option
val get_atom : t -> atype:string -> Aid.t -> Atom.t
val atom : t -> Aid.t -> Atom.t
val atom_ids : t -> string -> Aid.Set.t

val atoms : t -> string -> Atom.t list
(** In ascending identity order. *)

val count_atoms : t -> string -> int

val delete_atom : t -> Aid.t -> unit
(** Cascade-deletes every incident link (no dangling links). *)

val set_attribute : t -> atype:string -> Aid.t -> index:int -> Value.t -> unit
(** Set one attribute of an existing atom, domain-checked — the
    store-level modification primitive (journaled as [Op_set_attr]). *)

(** {1 Link occurrence} *)

val add_link : t -> string -> left:Aid.t -> right:Aid.t -> unit
(** Record a link; [left]/[right] must have the end types.  Enforces
    referential integrity and cardinality restrictions eagerly;
    idempotent on duplicates. *)

val remove_link : t -> string -> left:Aid.t -> right:Aid.t -> unit
val link_exists : t -> string -> left:Aid.t -> right:Aid.t -> bool

val linked : t -> string -> Aid.t -> Aid.t -> bool
(** Symmetric membership (unsorted-pair semantics). *)

val links : t -> string -> (Aid.t * Aid.t) list
val count_links : t -> string -> int

val neighbors : t -> string -> dir:[ `Fwd | `Bwd | `Both ] -> Aid.t -> Aid.Set.t
(** Partners over a link type. [`Fwd]: the atom plays the left role;
    [`Bwd]: the right; [`Both]: union (the fully symmetric view). *)

val iter_neighbors :
  t -> string -> dir:[ `Fwd | `Bwd | `Both ] -> Aid.t -> (Aid.t -> unit) -> unit
(** Iterate the partners of an atom without allocating a result set
    (ascending id order per side; [`Both] visits each partner once).
    The traversal primitive for hot loops. *)

val neighbors_scan :
  t -> string -> dir:[ `Fwd | `Bwd | `Both ] -> Aid.t -> Aid.Set.t
(** {!neighbors} computed by scanning the pair set instead of the
    index — the ablation baseline for what the bidirectional index
    buys. *)

val neighbors_of_atom : t -> string -> Atom.t -> Aid.Set.t
(** Direction inferred from the atom's type; reflexive types yield both
    views. *)

(** {1 Whole database} *)

val total_atoms : t -> int
val total_links : t -> int

val copy : t -> t
(** Deep copy (atoms are immutable and shared). *)

val pp_summary : Format.formatter -> t -> unit
