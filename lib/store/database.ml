(** The database: a set of atom types plus a set of link types (Def. 3),
    whose occurrences form the atom networks.

    The store is mutable (operations of both algebras *enlarge* the
    database, cf. Def. 9 and Theorem 1) and maintains, per link type, a
    bidirectional adjacency index.  That index is the operational
    realisation of the paper's symmetric link concept: traversing a link
    type from either end costs the same, which is what makes the same
    atom networks usable for totally different molecule types (Fig. 2). *)

module Pair = struct
  type t = Aid.t * Aid.t

  let compare (a1, b1) (a2, b2) =
    let c = Aid.compare a1 a2 in
    if c <> 0 then c else Aid.compare b1 b2
end

module Pair_set = Set.Make (Pair)

type atom_table = {
  at : Schema.Atom_type.t;
  atoms : (Aid.t, Atom.t) Hashtbl.t;
  mutable ids : Aid.Set.t;
}

type link_store = {
  lt : Schema.Link_type.t;
  mutable pairs : Pair_set.t;  (** (left-role atom, right-role atom) *)
  fwd : (Aid.t, Aid.Set.t) Hashtbl.t;  (** left atom -> right partners *)
  bwd : (Aid.t, Aid.Set.t) Hashtbl.t;  (** right atom -> left partners *)
}

(** The logical operations that change a database — the journal
    vocabulary.  One [op] is atomic: it either happened or it did not,
    which is what makes a log of them replayable ([Durable] appends
    each op as one checksummed record and replays the sequence on
    recovery).  A cascade ([delete_atom]) is a single op; the replay
    re-runs the cascade. *)
type op =
  | Op_define_atom_type of Schema.Atom_type.t
  | Op_define_link_type of Schema.Link_type.t
  | Op_drop_atom_type of string
  | Op_drop_link_type of string
  | Op_insert_atom of { atype : string; id : Aid.t; values : Value.t list }
  | Op_delete_atom of { atype : string; id : Aid.t }
  | Op_add_link of { lt : string; left : Aid.t; right : Aid.t }
  | Op_remove_link of { lt : string; left : Aid.t; right : Aid.t }
  | Op_set_attr of { atype : string; id : Aid.t; index : int; value : Value.t }

type t = {
  mutable next_id : int;
  atom_tables : (string, atom_table) Hashtbl.t;
  link_stores : (string, link_store) Hashtbl.t;
  mutable journal : (op -> unit) option;
      (** Called after each successful mutation (never for rejected
          ones); installed by the durability engine, [None] otherwise. *)
  mutable taps : (int -> op -> unit) list;
      (** Observers of the op stream, called with the post-bump epoch.
          Unlike the journal, taps also see the sub-ops of a cascade
          and the enlarged-database scratch mutations ([unjournaled]
          does not detach them): they exist for delta maintenance of
          derived structures, which must account for {e every} epoch
          movement or fall back to a rebuild. *)
  mutable epoch : int;
      (** Monotonic mutation epoch: bumped once per successful logical
          op (cascade sub-ops included).  Derived read-only structures
          — the kernel's CSR adjacency snapshots — record the epoch
          they were built at and rebuild when it has moved on. *)
}

let create () =
  { next_id = 1; atom_tables = Hashtbl.create 16;
    link_stores = Hashtbl.create 16; journal = None; taps = []; epoch = 0 }

let set_journal db j = db.journal <- j

let add_tap db f = db.taps <- db.taps @ [ f ]

let epoch db = db.epoch

(* every successful mutation flows through here (rejected ones raise
   before), so the epoch bump, the taps and the journal share one
   choke point; the epoch also moves for unjournaled sub-mutations,
   which is what snapshot invalidation needs.  Taps run before the
   journal: the store mutation has already happened, and a journal
   that raises (fault injection) must not leave the taps blind to an
   epoch that did move. *)
let emit db op =
  db.epoch <- db.epoch + 1;
  (match db.taps with
   | [] -> ()
   | taps ->
     let e = db.epoch in
     List.iter (fun f -> f e op) taps);
  match db.journal with None -> () | Some j -> j op

(* run [f] with journaling off: used when one logical op performs
   sub-mutations (the delete cascade) that must not be double-logged *)
let unjournaled db f =
  let j = db.journal in
  db.journal <- None;
  Fun.protect ~finally:(fun () -> db.journal <- j) f

let fresh_id db =
  let id = db.next_id in
  db.next_id <- id + 1;
  id

(* ------------------------------------------------------------------ *)
(* Schema definition                                                    *)

let has_atom_type db name = Hashtbl.mem db.atom_tables name
let has_link_type db name = Hashtbl.mem db.link_stores name

let define_atom_type db (at : Schema.Atom_type.t) =
  if has_atom_type db at.name then
    Err.failf "atom type %s already defined" at.name;
  Hashtbl.replace db.atom_tables at.name
    { at; atoms = Hashtbl.create 64; ids = Aid.Set.empty };
  emit db (Op_define_atom_type at);
  at

let declare_atom_type db name attrs =
  define_atom_type db (Schema.Atom_type.v name attrs)

let define_link_type db (lt : Schema.Link_type.t) =
  if has_link_type db lt.name then
    Err.failf "link type %s already defined" lt.name;
  let e1, e2 = lt.ends in
  if not (has_atom_type db e1) then
    Err.failf "link type %s: unknown atom type %s" lt.name e1;
  if not (has_atom_type db e2) then
    Err.failf "link type %s: unknown atom type %s" lt.name e2;
  Hashtbl.replace db.link_stores lt.name
    { lt; pairs = Pair_set.empty; fwd = Hashtbl.create 64; bwd = Hashtbl.create 64 };
  emit db (Op_define_link_type lt);
  lt

let declare_link_type ?card db name ends =
  define_link_type db (Schema.Link_type.v ?card name ends)

let atom_table db name =
  match Hashtbl.find_opt db.atom_tables name with
  | Some t -> t
  | None -> Err.failf "unknown atom type %s" name

let link_store db name =
  match Hashtbl.find_opt db.link_stores name with
  | Some s -> s
  | None -> Err.failf "unknown link type %s" name

let atom_type db name = (atom_table db name).at
let link_type db name = (link_store db name).lt

let atom_type_names db =
  Hashtbl.fold (fun k _ acc -> k :: acc) db.atom_tables []
  |> List.sort String.compare

let link_type_names db =
  Hashtbl.fold (fun k _ acc -> k :: acc) db.link_stores []
  |> List.sort String.compare

(** Link types that touch atom type [atname]; this is the basis of link
    inheritance (every result atom type reuses them, cf. Def. 4). *)
let incident_link_types db atname =
  link_type_names db
  |> List.filter_map (fun ln ->
         let lt = link_type db ln in
         if Schema.Link_type.touches lt atname then Some lt else None)

(** Link types defined between the (unordered) pair of atom types; used
    by MQL to resolve the ['-'] shorthand of ch. 4. *)
let link_types_between db a b =
  link_type_names db
  |> List.filter_map (fun ln ->
         let lt = link_type db ln in
         let e1, e2 = lt.ends in
         if (String.equal e1 a && String.equal e2 b)
            || (String.equal e1 b && String.equal e2 a)
         then Some lt
         else None)

let drop_atom_type db name =
  let _ = atom_table db name in
  List.iter
    (fun (lt : Schema.Link_type.t) ->
      if Schema.Link_type.touches lt name then
        Hashtbl.remove db.link_stores lt.name)
    (List.map (link_type db) (link_type_names db));
  Hashtbl.remove db.atom_tables name;
  emit db (Op_drop_atom_type name)

let drop_link_type db name =
  let _ = link_store db name in
  Hashtbl.remove db.link_stores name;
  emit db (Op_drop_link_type name)

(* ------------------------------------------------------------------ *)
(* Atom occurrence                                                      *)

let check_values (at : Schema.Atom_type.t) values =
  let arity = Schema.Atom_type.arity at in
  if List.length values <> arity then
    Err.failf "atom type %s expects %d attribute values, got %d" at.name
      arity (List.length values);
  List.iter2
    (fun (a : Schema.Attr.t) v ->
      if not (Domain.mem v a.domain) then
        Err.failf "atom type %s, attribute %s: value %s outside domain %s"
          at.name a.name (Value.to_string v)
          (Domain.to_string a.domain))
    at.attrs values

let insert_atom db ~atype values =
  let tbl = atom_table db atype in
  check_values tbl.at values;
  let id = fresh_id db in
  let atom = Atom.v ~id ~atype values in
  Hashtbl.replace tbl.atoms id atom;
  tbl.ids <- Aid.Set.add id tbl.ids;
  emit db (Op_insert_atom { atype; id; values });
  atom

(** Insert a pre-built atom (fresh id is still assigned by the database;
    provenance bookkeeping is the caller's business). *)
let insert_atom_values db ~atype values_array =
  insert_atom db ~atype (Array.to_list values_array)

(** Insert an atom under a caller-chosen identity (used when loading a
    dumped database, where identities must be preserved because links
    reference them).  Fails if the identity is already taken. *)
let insert_atom_exact db ~atype ~id values =
  let tbl = atom_table db atype in
  check_values tbl.at values;
  if Hashtbl.mem tbl.atoms id then
    Err.failf "atom identity %s already in use" (Aid.to_string id);
  let atom = Atom.v ~id ~atype values in
  Hashtbl.replace tbl.atoms id atom;
  tbl.ids <- Aid.Set.add id tbl.ids;
  if id >= db.next_id then db.next_id <- id + 1;
  emit db (Op_insert_atom { atype; id; values });
  atom

let find_atom db id =
  let found = ref None in
  Hashtbl.iter
    (fun _ tbl ->
      match Hashtbl.find_opt tbl.atoms id with
      | Some a -> found := Some a
      | None -> ())
    db.atom_tables;
  !found

let get_atom db ~atype id =
  let tbl = atom_table db atype in
  match Hashtbl.find_opt tbl.atoms id with
  | Some a -> a
  | None -> Err.failf "atom type %s has no atom %s" atype (Aid.to_string id)

let atom db id =
  match find_atom db id with
  | Some a -> a
  | None -> Err.failf "no atom %s in database" (Aid.to_string id)

let atom_ids db atype = (atom_table db atype).ids

let atoms db atype =
  let tbl = atom_table db atype in
  Aid.Set.elements tbl.ids |> List.map (Hashtbl.find tbl.atoms)

let count_atoms db atype = Aid.Set.cardinal (atom_table db atype).ids

(* ------------------------------------------------------------------ *)
(* Link occurrence                                                      *)

let adj_add tbl k v =
  let cur = Option.value ~default:Aid.Set.empty (Hashtbl.find_opt tbl k) in
  Hashtbl.replace tbl k (Aid.Set.add v cur)

let adj_remove tbl k v =
  match Hashtbl.find_opt tbl k with
  | None -> ()
  | Some s ->
    let s = Aid.Set.remove v s in
    if Aid.Set.is_empty s then Hashtbl.remove tbl k else Hashtbl.replace tbl k s

let adj_find tbl k =
  Option.value ~default:Aid.Set.empty (Hashtbl.find_opt tbl k)

let degree_fwd st id = Aid.Set.cardinal (adj_find st.fwd id)
let degree_bwd st id = Aid.Set.cardinal (adj_find st.bwd id)

(** [add_link db lt left right] records the link [<left,right>] in link
    type [lt]; [left] must be an atom of the first end's type, [right]
    of the second's.  Referential integrity is enforced eagerly (the
    paper: "There are no dangling references"), as are the cardinality
    restrictions of an extended link-type definition. *)
let add_link db ltname ~left ~right =
  let st = link_store db ltname in
  let e1, e2 = st.lt.ends in
  let a_left = get_atom db ~atype:e1 left in
  let a_right = get_atom db ~atype:e2 right in
  ignore a_left;
  ignore a_right;
  if Pair_set.mem (left, right) st.pairs then ()
  else begin
    (let max_l, max_r = st.lt.card in
     (match max_r with
      | Some k when degree_fwd st left >= k ->
        Err.failf
          "link type %s: atom %s already carries %d links (cardinality)"
          ltname (Aid.to_string left) k
      | Some _ | None -> ());
     match max_l with
     | Some k when degree_bwd st right >= k ->
       Err.failf
         "link type %s: atom %s already carries %d links (cardinality)"
         ltname (Aid.to_string right) k
     | Some _ | None -> ());
    st.pairs <- Pair_set.add (left, right) st.pairs;
    adj_add st.fwd left right;
    adj_add st.bwd right left;
    emit db (Op_add_link { lt = ltname; left; right })
  end

let remove_link db ltname ~left ~right =
  let st = link_store db ltname in
  if Pair_set.mem (left, right) st.pairs then begin
    st.pairs <- Pair_set.remove (left, right) st.pairs;
    adj_remove st.fwd left right;
    adj_remove st.bwd right left;
    emit db (Op_remove_link { lt = ltname; left; right })
  end

let link_exists db ltname ~left ~right =
  Pair_set.mem (left, right) (link_store db ltname).pairs

(** The symmetric membership test (unsorted-pair semantics): holds if
    the two atoms are linked in either role assignment. *)
let linked db ltname a b =
  let st = link_store db ltname in
  Pair_set.mem (a, b) st.pairs || Pair_set.mem (b, a) st.pairs

let links db ltname = Pair_set.elements (link_store db ltname).pairs
let count_links db ltname = Pair_set.cardinal (link_store db ltname).pairs

(** Partners of [from] over link type [lt].
    [`Fwd] : [from] plays the left (first-end) role, partners are right.
    [`Bwd] : the converse.  [`Both] : union of the two (the fully
    symmetric view; for non-reflexive types at most one side is ever
    populated for a given atom). *)
let neighbors db ltname ~dir from =
  let st = link_store db ltname in
  match dir with
  | `Fwd -> adj_find st.fwd from
  | `Bwd -> adj_find st.bwd from
  | `Both -> Aid.Set.union (adj_find st.fwd from) (adj_find st.bwd from)

(** Iterate the partners of [from] without building a union set: the
    stored side sets are walked in ascending id order; for [`Both] the
    backward side skips atoms already seen forward, so each partner is
    visited exactly once (same multiset as {!neighbors}).  This is the
    allocation-free traversal primitive for hot loops (closure
    fixpoints, integrity re-verification). *)
let iter_neighbors db ltname ~dir from f =
  let st = link_store db ltname in
  match dir with
  | `Fwd -> Aid.Set.iter f (adj_find st.fwd from)
  | `Bwd -> Aid.Set.iter f (adj_find st.bwd from)
  | `Both ->
    let fwd = adj_find st.fwd from in
    Aid.Set.iter f fwd;
    Aid.Set.iter (fun id -> if not (Aid.Set.mem id fwd) then f id)
      (adj_find st.bwd from)

(** Like {!neighbors} but computed by scanning the link type's pair set
    instead of the adjacency index — the ablation baseline quantifying
    what the bidirectional index buys (a model without first-class
    symmetric links pays this scan, or a join, per traversal). *)
let neighbors_scan db ltname ~dir from =
  let st = link_store db ltname in
  Pair_set.fold
    (fun (l, r) acc ->
      match dir with
      | `Fwd -> if Aid.equal l from then Aid.Set.add r acc else acc
      | `Bwd -> if Aid.equal r from then Aid.Set.add l acc else acc
      | `Both ->
        let acc = if Aid.equal l from then Aid.Set.add r acc else acc in
        if Aid.equal r from then Aid.Set.add l acc else acc)
    st.pairs Aid.Set.empty

(** Partners of atom [a] determined by its atom type: the direction is
    inferred from which end [a]'s type plays.  Reflexive link types
    yield the union of both views (callers that need one view must use
    {!neighbors} with an explicit direction). *)
let neighbors_of_atom db ltname (a : Atom.t) =
  let st = link_store db ltname in
  match Schema.Link_type.role_of st.lt a.atype with
  | `Left -> neighbors db ltname ~dir:`Fwd a.id
  | `Right -> neighbors db ltname ~dir:`Bwd a.id
  | `Both -> neighbors db ltname ~dir:`Both a.id
  | `None ->
    Err.failf "link type %s does not touch atom type %s" ltname a.atype

(** Delete an atom and cascade-delete every link it carries, keeping the
    no-dangling-links invariant. *)
let delete_atom db id =
  match find_atom db id with
  | None -> Err.failf "no atom %s in database" (Aid.to_string id)
  | Some a ->
    (* the cascade is one logical op: sub-removals are not journaled,
       replaying [Op_delete_atom] re-runs the cascade *)
    unjournaled db (fun () ->
        List.iter
          (fun (lt : Schema.Link_type.t) ->
            let st = link_store db lt.name in
            Aid.Set.iter (fun r -> remove_link db lt.name ~left:id ~right:r)
              (adj_find st.fwd id);
            Aid.Set.iter (fun l -> remove_link db lt.name ~left:l ~right:id)
              (adj_find st.bwd id))
          (incident_link_types db a.atype));
    let tbl = atom_table db a.atype in
    Hashtbl.remove tbl.atoms id;
    tbl.ids <- Aid.Set.remove id tbl.ids;
    emit db (Op_delete_atom { atype = a.atype; id })

(** Set one attribute (by index) of an existing atom, domain-checked.
    The store-level modification primitive: [Manipulate] routes its
    attribute updates here so they reach the journal. *)
let set_attribute db ~atype id ~index value =
  let tbl = atom_table db atype in
  let a =
    match Hashtbl.find_opt tbl.atoms id with
    | Some a -> a
    | None -> Err.failf "atom type %s has no atom %s" atype (Aid.to_string id)
  in
  (match List.nth_opt tbl.at.Schema.Atom_type.attrs index with
   | None ->
     Err.failf "atom type %s has no attribute index %d" atype index
   | Some (attr : Schema.Attr.t) ->
     if not (Domain.mem value attr.domain) then
       Err.failf "atom type %s, attribute %s: value %s outside domain %s"
         atype attr.name (Value.to_string value)
         (Domain.to_string attr.domain));
  a.Atom.values.(index) <- value;
  emit db (Op_set_attr { atype; id; index; value })

(* ------------------------------------------------------------------ *)
(* Whole-database helpers                                               *)

let total_atoms db =
  List.fold_left (fun n at -> n + count_atoms db at) 0 (atom_type_names db)

let total_links db =
  List.fold_left (fun n lt -> n + count_links db lt) 0 (link_type_names db)

(** Deep copy (fresh hashtables and sets; atoms are shared — callers
    mutating attributes through the store see the journal fire on the
    copy they mutate only).  The journal is not copied: a copy is a
    private scratch database.  Used by tests and by engines that must
    not disturb the caller's database. *)
let copy db =
  let db' = create () in
  db'.next_id <- db.next_id;
  List.iter
    (fun name ->
      let tbl = atom_table db name in
      let tbl' =
        { at = tbl.at; atoms = Hashtbl.copy tbl.atoms; ids = tbl.ids }
      in
      Hashtbl.replace db'.atom_tables name tbl')
    (atom_type_names db);
  List.iter
    (fun name ->
      let st = link_store db name in
      let st' =
        { lt = st.lt; pairs = st.pairs; fwd = Hashtbl.copy st.fwd;
          bwd = Hashtbl.copy st.bwd }
      in
      Hashtbl.replace db'.link_stores name st')
    (link_type_names db);
  db'

let pp_summary ppf db =
  Fmt.pf ppf "@[<v>database: %d atom types, %d link types, %d atoms, %d links@]"
    (List.length (atom_type_names db))
    (List.length (link_type_names db))
    (total_atoms db) (total_links db)
