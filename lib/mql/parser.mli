(** Recursive-descent parser for MOL (grammar in {!Ast}). *)

val parse : ?env_has:(string -> bool) -> string -> Ast.stmt
(** Parse one MOL statement.  [env_has] tells which molecule-type names
    are already defined, so a bare FROM identifier reads as a reference
    rather than a one-node structure.  Fails with a positioned
    {!Mad_store.Err.Mad_error} on syntax errors. *)
