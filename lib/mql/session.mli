(** MOL sessions: a database plus the catalog of molecule types defined
    by [DEFINE MOLECULE] or named FROM definitions (dynamic object
    definition).  Manipulation statements refresh the catalog. *)

open Mad_store

type outcome =
  | Defined of Mad.Molecule_type.t
  | Result of Translate.result
  | Inserted of Atom.t
  | Dml of string  (** summary of a manipulation statement's effect *)
  | Explained of string  (** EXPLAIN / EXPLAIN ANALYZE report *)

type ext = ..
(** Extension slot for layers above this library: PRIMA stores its
    per-session adaptive statistics catalog here (see
    [Prima.Adaptive]) without creating a downward dependency. *)

type commit_handle
(** Identifies one registered commit hook (see {!add_on_commit}). *)

type t = {
  db : Database.t;
  env : (string, Mad.Molecule_type.t) Hashtbl.t;
  stats : Mad.Derive.stats;
  obs : Mad_obs.Obs.t;
  mutable ext : ext option;
  mutable commit_hooks : (commit_handle * (unit -> unit)) list;
      (** Run, in registration order, after every successful
          manipulation statement — the statement-level durability
          boundary (autocommit).  Register through {!add_on_commit};
          a durable session installs the engine's group commit here,
          and the network server adds its cross-session commit
          coordinator alongside it. *)
  mutable hook_seq : int;  (** internal: next {!commit_handle} *)
  mutable legacy_hook : commit_handle option;
      (** internal: the hook owned by the {!set_on_commit} shim *)
  mutable digest : Mad_obs.Digest.t option;
      (** Workload digest; [None] (the default) records nothing.
          {!enable_digest} creates one against the session registry. *)
  mutable slow_guard : bool;
      (** True while a slow-log capture is re-running the statement
          (EXPLAIN ANALYZE) — suppresses recursive slow-logging. *)
  fp_cache : (string, int * string) Hashtbl.t;
      (** source text -> (fingerprint, normalized text), so a repeated
          statement does not pay AST normalization twice *)
  mutable fp_mru : (string * (int * string)) option;
      (** the last {!run} source and its fingerprint *)
  mutable refreshed_epoch : int;
      (** internal: the epoch the catalog was last re-derived at —
          {!refresh} delta-gates its sweep against it *)
  mutable last_commit_us : float;
      (** internal: commit-hook µs since the last
          {!take_last_commit_us} *)
}

val analyze_hook : (t -> Ast.stmt -> string) option ref
(** [EXPLAIN ANALYZE] needs the physical engine, which lives above
    this library; a profiler (see [Prima.Profile.install]) registers
    itself here.  Without one, ANALYZE executes the statement and
    reports session-level actuals only. *)

val plan_hash_hook : (t -> fp:int -> Ast.stmt -> int) option ref
(** Hashes the physical plan the engine would choose for a statement
    (see [Prima.Adaptive.install]); the digest aggregates per
    (fingerprint, plan hash).  [fp] is the statement's fingerprint —
    implementations key their memoization on it.  Without a hook,
    digest rows fall back to a per-statement-kind pseudo plan. *)

val create : ?obs:Mad_obs.Obs.t -> Database.t -> t
(** [obs] defaults to the process-wide context of [MAD_OBS]
    ({!Mad_obs.Obs.default}); the session's [stats] counters live in
    its registry, and every statement runs under a root span.
    {!lookup} finds a catalogued molecule type. *)

val lookup : t -> string -> Mad.Molecule_type.t option
val define : t -> string -> Mad.Molecule_type.t -> unit

val add_on_commit : t -> (unit -> unit) -> commit_handle
(** Register a commit hook, run (in registration order) after every
    successful manipulation statement.  Returns a handle for
    {!remove_on_commit}.  Multiple subsystems — durability's group
    commit, the server's cross-session commit coordinator — can each
    hold a hook without clobbering the others. *)

val remove_on_commit : t -> commit_handle -> unit
(** Unregister; unknown handles are ignored. *)

val take_last_commit_us : t -> float
(** Wall-clock µs spent inside commit hooks (WAL flush + fsync
    publication) since the last take; resets to 0.  The network server
    uses this to break a request's latency into phases — the commit
    share becomes the "wal" phase. *)

val set_on_commit : t -> (unit -> unit) option -> unit
  [@@ocaml.deprecated "use add_on_commit / remove_on_commit"]
(** Deprecated shim over {!add_on_commit}: replaces (or, with [None],
    removes) the single hook this setter owns, as the old
    [session.on_commit <- ...] field assignment behaved.  Hooks
    registered by other subsystems are untouched. *)

val commit : t -> unit
(** Run the registered commit hooks, if any ({!eval_stmt} does this
    after each manipulation statement). *)

val refresh : t -> unit
(** Bring the catalog up to the current occurrence.  Manipulation
    statements do this implicitly for the session that ran them; a
    server hosting {e many} sessions over one database calls it on
    sessions whose catalog may be stale because another session
    mutated the store (tracked by [Database.epoch]).  The sweep is
    delta-gated: with a covering {!Mad_kernel.Delta} window, only
    molecule types whose structure (atom-type nodes or link-type
    edges) the window touched are re-derived — an attribute-only
    window re-derives nothing; without a window every type is
    re-derived. *)

val parse : t -> string -> Ast.stmt
(** Parse with the session's catalog (bare FROM identifiers resolve to
    defined molecule types). *)

val enable_digest : t -> Mad_obs.Digest.t
(** Get or create the session's workload digest (registered into the
    session registry, so {!Mad_obs.Registry.expose} exports it).  Once
    enabled, every {!eval_stmt} records a (fingerprint, plan hash) row
    and statements over the slow threshold
    ({!Mad_obs.Digest.slow_threshold_ms}) append to the slow-query
    log. *)

val stmt_kind : Ast.stmt -> string
(** The statement's kind tag ("query", "insert", …) as used for span
    attributes and the digest's fallback plan identity. *)

val eval_stmt : ?fp_text:int * string -> t -> Ast.stmt -> outcome
(** Evaluate one parsed statement.  With a digest enabled, the
    execution is recorded under the statement's (fingerprint, plan
    hash); [fp_text] supplies a pre-computed fingerprint ({!run}'s
    source-text cache) so the AST is not re-normalized. *)

val run : t -> string -> outcome
(** Parse and evaluate one MOL statement.  The parse is timed as its
    own operator ([op.latency_us{op=mql.parse}]).  After each
    statement the global telemetry timeline gets an interval-gated
    tick ({!Mad_obs.Timeline.auto_tick}) against the session registry
    — near-free while [MAD_OBS_TICK] is unset. *)

val fault_spin_ms : float option ref
(** Fault injection for health smoke tests: when set, every statement
    busy-waits this many milliseconds inside its timed block (on
    {!Mad_obs.Span.clock}, so deterministic test clocks apply), which
    the digest latency histograms — and thus the timeline's latency
    probe — observe as a genuine regression.  [None] (the default)
    costs one ref read per statement. *)

val run_to_string : t -> string -> string
(** Evaluate and render (molecule trees, explosion trees, DML
    summaries). *)

val explain_stmt : t -> Ast.stmt -> string
(** The algebra plan a parsed statement compiles to. *)

val explain : t -> string -> string
(** The algebra plan the statement compiles to. *)
