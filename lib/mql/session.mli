(** MOL sessions: a database plus the catalog of molecule types defined
    by [DEFINE MOLECULE] or named FROM definitions (dynamic object
    definition).  Manipulation statements refresh the catalog. *)

open Mad_store

type outcome =
  | Defined of Mad.Molecule_type.t
  | Result of Translate.result
  | Inserted of Atom.t
  | Dml of string  (** summary of a manipulation statement's effect *)
  | Explained of string  (** EXPLAIN / EXPLAIN ANALYZE report *)

type ext = ..
(** Extension slot for layers above this library: PRIMA stores its
    per-session adaptive statistics catalog here (see
    [Prima.Adaptive]) without creating a downward dependency. *)

type t = {
  db : Database.t;
  env : (string, Mad.Molecule_type.t) Hashtbl.t;
  stats : Mad.Derive.stats;
  obs : Mad_obs.Obs.t;
  mutable ext : ext option;
  mutable on_commit : (unit -> unit) option;
      (** Called after every successful manipulation statement — the
          statement-level durability boundary (autocommit).  A durable
          session installs the engine's group commit here. *)
}

val analyze_hook : (t -> Ast.stmt -> string) option ref
(** [EXPLAIN ANALYZE] needs the physical engine, which lives above
    this library; a profiler (see [Prima.Profile.install]) registers
    itself here.  Without one, ANALYZE executes the statement and
    reports session-level actuals only. *)

val create : ?obs:Mad_obs.Obs.t -> Database.t -> t
(** [obs] defaults to the process-wide context of [MAD_OBS]
    ({!Mad_obs.Obs.default}); the session's [stats] counters live in
    its registry, and every statement runs under a root span.
    {!lookup} finds a catalogued molecule type. *)

val lookup : t -> string -> Mad.Molecule_type.t option
val define : t -> string -> Mad.Molecule_type.t -> unit

val commit : t -> unit
(** Run the [on_commit] hook, if any ({!eval_stmt} does this after
    each manipulation statement). *)

val parse : t -> string -> Ast.stmt
(** Parse with the session's catalog (bare FROM identifiers resolve to
    defined molecule types). *)

val eval_stmt : t -> Ast.stmt -> outcome

val run : t -> string -> outcome
(** Parse and evaluate one MOL statement. *)

val run_to_string : t -> string -> string
(** Evaluate and render (molecule trees, explosion trees, DML
    summaries). *)

val explain_stmt : t -> Ast.stmt -> string
(** The algebra plan a parsed statement compiles to. *)

val explain : t -> string -> string
(** The algebra plan the statement compiles to. *)
