(** Recursive-descent parser for MOL (grammar in {!Ast}). *)

open Mad_store
module L = Lexer

type state = { toks : L.token array; mutable pos : int }

let peek st = st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let fail_at st msg =
  Err.failf "MOL parse error at token %d (%s): %s" st.pos
    (Format.asprintf "%a" L.pp_token (peek st))
    msg

let expect st tok msg =
  if peek st = tok then advance st else fail_at st msg

let accept st tok = if peek st = tok then (advance st; true) else false

let ident st =
  match next st with
  | L.IDENT s -> s
  | _ ->
    st.pos <- st.pos - 1;
    fail_at st "expected identifier"

let atid st =
  match next st with
  | L.ATID i -> i
  | _ ->
    st.pos <- st.pos - 1;
    fail_at st "expected atom identity (@<n>)"

(* A bare link-type name possibly containing dashes ([city-point]),
   which the lexer splits at the structure separator; re-join greedily.
   Only used where the following token disambiguates (ATID, view or
   depth keywords, end of statement). *)
let link_name st =
  let first =
    match next st with
    | L.IDENT l -> l
    | L.LBRACKET_LINK l -> l
    | _ ->
      st.pos <- st.pos - 1;
      fail_at st "expected link-type name"
  in
  let rec go acc =
    if peek st = L.DASH then begin
      advance st;
      go (acc ^ "-" ^ ident st)
    end
    else acc
  in
  go first


(* ------------------------------------------------------------------ *)
(* Structures                                                           *)

(* Accumulate edges into a structure under construction. *)
type sbuild = { mutable nodes : string list; mutable edges : (Ast.link_ref * string * string) list }

let snode b n = if not (List.mem n b.nodes) then b.nodes <- b.nodes @ [ n ]

let sedge b l f t =
  snode b f;
  snode b t;
  if not (List.exists (fun e -> e = (l, f, t)) b.edges) then
    b.edges <- b.edges @ [ (l, f, t) ]

(* path := node step*  ; step := ('-' | '-[l]-') seg
   seg := node | '(' branch (',' branch)* ')'
   branch := ('[l]-')? path        -- leading link spec inside parens *)
let rec parse_path st b : string =
  let head = ident st in
  snode b head;
  parse_steps st b head;
  head

and parse_steps st b from =
  match peek st with
  | L.DASH ->
    advance st;
    parse_seg st b from Ast.Auto
  | L.LBRACKET_LINK l ->
    advance st;
    parse_seg st b from (Ast.Via l)
  | _ -> ()

and parse_seg st b from link =
  match peek st with
  | L.LPAREN ->
    advance st;
    let rec branches () =
      (* optional leading [l]- overrides the outer step's link ref *)
      let blink =
        match peek st with
        | L.LBRACKET_LINK l ->
          advance st;
          Ast.Via l
        | _ -> link
      in
      let head = ident st in
      sedge b blink from head;
      parse_steps st b head;
      if accept st L.COMMA then branches ()
    in
    branches ();
    expect st L.RPAREN "expected ')' closing structure branches"
  | _ ->
    let to_node = ident st in
    sedge b link from to_node;
    parse_steps st b to_node

let parse_structure st : Ast.structure =
  let b = { nodes = []; edges = [] } in
  ignore (parse_path st b);
  { Ast.s_nodes = b.nodes; s_edges = b.edges }

(* ------------------------------------------------------------------ *)
(* Predicates                                                           *)

let value_of_token st =
  match next st with
  | L.INT i -> Value.Int i
  | L.FLOAT f -> Value.Float f
  | L.STRING s -> Value.String s
  | L.KW "TRUE" -> Value.Bool true
  | L.KW "FALSE" -> Value.Bool false
  | _ ->
    st.pos <- st.pos - 1;
    fail_at st "expected literal"

let rec parse_expr st : Mad.Qual.expr =
  let lhs = parse_term st in
  let rec loop lhs =
    match peek st with
    | L.PLUS ->
      advance st;
      loop (Mad.Qual.Add (lhs, parse_term st))
    | L.DASH ->
      advance st;
      loop (Mad.Qual.Sub (lhs, parse_term st))
    | _ -> lhs
  in
  loop lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec loop lhs =
    match peek st with
    | L.STAR ->
      advance st;
      loop (Mad.Qual.Mul (lhs, parse_factor st))
    | L.SLASH ->
      advance st;
      loop (Mad.Qual.Div (lhs, parse_factor st))
    | _ -> lhs
  in
  loop lhs

and parse_factor st =
  match peek st with
  | L.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st L.RPAREN "expected ')' closing arithmetic";
    e
  | L.KW "COUNT" ->
    advance st;
    expect st L.LPAREN "expected '(' after COUNT";
    let n = ident st in
    expect st L.RPAREN "expected ')' after COUNT node";
    Mad.Qual.Count n
  | L.KW (("SUM" | "MIN" | "MAX" | "AVG") as kw) ->
    advance st;
    expect st L.LPAREN "expected '(' after aggregate";
    let n = ident st in
    expect st L.DOT "expected '.' in aggregate argument";
    let a = ident st in
    expect st L.RPAREN "expected ')' after aggregate";
    let agg =
      match kw with
      | "SUM" -> Mad.Qual.Sum
      | "MIN" -> Mad.Qual.Min
      | "MAX" -> Mad.Qual.Max
      | _ -> Mad.Qual.Avg
    in
    Mad.Qual.Agg (agg, n, a)
  | L.IDENT _ ->
    let node = ident st in
    expect st L.DOT "expected '.' in attribute reference";
    let attr = ident st in
    Mad.Qual.attr node attr
  | L.INT _ | L.FLOAT _ | L.STRING _ | L.KW "TRUE" | L.KW "FALSE" ->
    Mad.Qual.Const (value_of_token st)
  | _ -> fail_at st "expected expression"

let parse_cmp_op st =
  match next st with
  | L.EQ -> Mad.Qual.Eq
  | L.NE -> Mad.Qual.Ne
  | L.LT -> Mad.Qual.Lt
  | L.LE -> Mad.Qual.Le
  | L.GT -> Mad.Qual.Gt
  | L.GE -> Mad.Qual.Ge
  | _ ->
    st.pos <- st.pos - 1;
    fail_at st "expected comparison operator"

let rec parse_pred st : Mad.Qual.t =
  let lhs = parse_and st in
  if accept st (L.KW "OR") then Mad.Qual.Or (lhs, parse_pred st) else lhs

and parse_and st =
  let lhs = parse_unary st in
  if accept st (L.KW "AND") then Mad.Qual.And (lhs, parse_and st) else lhs

and parse_unary st =
  match peek st with
  | L.KW "NOT" ->
    advance st;
    Mad.Qual.Not (parse_unary st)
  | L.KW "EXISTS" | L.KW "FORALL" ->
    let kw = match next st with L.KW k -> k | _ -> assert false in
    let n = ident st in
    expect st L.LPAREN "expected '(' after quantifier";
    let p = parse_pred st in
    expect st L.RPAREN "expected ')' closing quantifier";
    if String.equal kw "EXISTS" then Mad.Qual.Exists (n, p)
    else Mad.Qual.Forall (n, p)
  | L.KW "TRUE" | L.KW "FALSE" -> begin
    (* TRUE/FALSE may be a proposition or a boolean literal in a
       comparison; decide by lookahead *)
    let saved = st.pos in
    let kw = match next st with L.KW k -> k | _ -> assert false in
    match peek st with
    | L.EQ | L.NE | L.LT | L.LE | L.GT | L.GE ->
      st.pos <- saved;
      parse_comparison st
    | _ -> if String.equal kw "TRUE" then Mad.Qual.True else Mad.Qual.False
  end
  | L.LPAREN -> begin
    (* '(' may open a parenthesized predicate or an arithmetic group;
       try predicate first, backtrack on failure *)
    let saved = st.pos in
    match
      advance st;
      let p = parse_pred st in
      expect st L.RPAREN "expected ')' closing predicate";
      p
    with
    | p -> p
    | exception Err.Mad_error _ ->
      st.pos <- saved;
      parse_comparison st
  end
  | _ -> parse_comparison st

and parse_comparison st =
  let lhs = parse_expr st in
  let op = parse_cmp_op st in
  let rhs = parse_expr st in
  Mad.Qual.Cmp (op, lhs, rhs)

(* ------------------------------------------------------------------ *)
(* Queries                                                              *)

let parse_select_list st =
  if accept st (L.KW "ALL") then Ast.All
  else
    let rec items acc =
      let n = ident st in
      let attrs =
        if accept st L.LPAREN then begin
          let rec attrs acc =
            let a = ident st in
            if accept st L.COMMA then attrs (a :: acc) else List.rev (a :: acc)
          in
          let l = attrs [] in
          expect st L.RPAREN "expected ')' closing attribute list";
          Some l
        end
        else None
      in
      let acc = (n, attrs) :: acc in
      if accept st L.COMMA then items acc else List.rev acc
    in
    Ast.Items (items [])

let parse_from st env_has =
  (* cases: name '(' structure ')'   named definition
            node RECURSIVE ...       recursive
            name                     reference (if defined and no '-')
            structure                anonymous *)
  let saved = st.pos in
  let first = ident st in
  match peek st with
  | L.LPAREN ->
    advance st;
    let s = parse_structure st in
    expect st L.RPAREN "expected ')' closing molecule-type definition";
    Ast.From_named_def (first, s)
  | L.KW "RECURSIVE"
    when st.pos + 2 < Array.length st.toks && st.toks.(st.pos + 2) = L.LPAREN
    ->
    (* cycle recursion: RECURSIVE BY (step, ~step, ...) *)
    advance st;
    expect st (L.KW "BY") "expected BY after RECURSIVE";
    expect st L.LPAREN "expected '(' opening cycle steps";
    let rec steps acc =
      let bwd = accept st L.TILDE in
      let l = link_name st in
      let acc = (l, bwd) :: acc in
      if accept st L.COMMA then steps acc else List.rev acc
    in
    let s = steps [] in
    expect st L.RPAREN "expected ')' closing cycle steps";
    let depth =
      if accept st (L.KW "DEPTH") then
        match next st with
        | L.INT d -> Some d
        | _ ->
          st.pos <- st.pos - 1;
          fail_at st "expected integer after DEPTH"
      else None
    in
    Ast.From_cycle { root = first; steps = s; depth }
  | L.KW "RECURSIVE" ->
    advance st;
    expect st (L.KW "BY") "expected BY after RECURSIVE";
    let link = link_name st in
    let view =
      if accept st (L.KW "SUPER") then Mad_recursive.Recursive.Super
      else if accept st (L.KW "SUB") then Mad_recursive.Recursive.Sub
      else Mad_recursive.Recursive.Sub
    in
    let depth =
      if accept st (L.KW "DEPTH") then
        match next st with
        | L.INT d -> Some d
        | _ ->
          st.pos <- st.pos - 1;
          fail_at st "expected integer after DEPTH"
      else None
    in
    let with_structure =
      if accept st (L.KW "WITH") then Some (parse_structure st) else None
    in
    Ast.From_recursive { root = first; link; view; depth; with_structure }
  | L.DASH | L.LBRACKET_LINK _ ->
    st.pos <- saved;
    Ast.From_anon (parse_structure st)
  | _ ->
    if env_has first then Ast.From_ref first
    else Ast.From_anon { Ast.s_nodes = [ first ]; s_edges = [] }

let parse_query st env_has =
  expect st (L.KW "SELECT") "expected SELECT";
  let select = parse_select_list st in
  expect st (L.KW "FROM") "expected FROM";
  let from = parse_from st env_has in
  (* FROM a, b (, c ...) is the molecule-type product X *)
  let rec products from =
    if accept st L.COMMA then
      products (Ast.From_product (from, parse_from st env_has))
    else from
  in
  let from = products from in
  let where =
    if accept st (L.KW "WHERE") then Some (parse_pred st) else None
  in
  { Ast.select; from; where }

let parse_qexpr st env_has =
  let lhs = Ast.Q (parse_query st env_has) in
  let rec loop lhs =
    if accept st (L.KW "UNION") then
      loop (Ast.Union (lhs, Ast.Q (parse_query st env_has)))
    else if accept st (L.KW "DIFF") then
      loop (Ast.Diff (lhs, Ast.Q (parse_query st env_has)))
    else if accept st (L.KW "INTERSECT") then
      loop (Ast.Intersect (lhs, Ast.Q (parse_query st env_has)))
    else lhs
  in
  loop lhs

let parse_insert st =
  ignore (accept st (L.KW "INTO"));
  let atype = ident st in
  expect st (L.KW "VALUES") "expected VALUES";
  expect st L.LPAREN "expected '(' before values";
  let rec values acc =
    let v = value_of_token st in
    if accept st L.COMMA then values (v :: acc) else List.rev (v :: acc)
  in
  let vs = if accept st L.RPAREN then [] else begin
    let vs = values [] in
    expect st L.RPAREN "expected ')' after values";
    vs
  end
  in
  let rec links acc =
    if accept st (L.KW "LINK") then begin
      let lt = link_name st in
      let id = atid st in
      links ((lt, id) :: acc)
    end
    else List.rev acc
  in
  Ast.Insert { atype; values = vs; links = links [] }

let parse_link_stmt st constructor =
  let lt = link_name st in
  let left = atid st in
  let right = atid st in
  constructor lt left right

let parse_plain_stmt st env_has =
  let stmt =
    if accept st (L.KW "DEFINE") then begin
      expect st (L.KW "MOLECULE") "expected MOLECULE after DEFINE";
      let name = ident st in
      expect st (L.KW "AS") "expected AS";
      let s = parse_structure st in
      Ast.Define (name, s)
    end
    else if accept st (L.KW "INSERT") then parse_insert st
    else if accept st (L.KW "LINK") then
      parse_link_stmt st (fun lt left right -> Ast.Link { lt; left; right })
    else if accept st (L.KW "UNLINK") then
      parse_link_stmt st (fun lt left right -> Ast.Unlink { lt; left; right })
    else if accept st (L.KW "DELETE") then begin
      expect st (L.KW "FROM") "expected FROM after DELETE";
      let from = parse_from st env_has in
      let where =
        if accept st (L.KW "WHERE") then Some (parse_pred st) else None
      in
      let detach = accept st (L.KW "DETACH") in
      Ast.Delete { from; where; detach }
    end
    else if accept st (L.KW "MODIFY") then begin
      let node = ident st in
      expect st L.DOT "expected '.' in MODIFY target";
      let attr = ident st in
      expect st L.EQ "expected '=' in MODIFY";
      let value = value_of_token st in
      expect st (L.KW "FROM") "expected FROM in MODIFY";
      let from = parse_from st env_has in
      let where =
        if accept st (L.KW "WHERE") then Some (parse_pred st) else None
      in
      Ast.Modify { node; attr; value; from; where }
    end
    else Ast.Query (parse_qexpr st env_has)
  in
  stmt

let parse_stmt st env_has =
  let stmt =
    if accept st (L.KW "EXPLAIN") then
      let analyze = accept st (L.KW "ANALYZE") in
      Ast.Explain { analyze; stmt = parse_plain_stmt st env_has }
    else parse_plain_stmt st env_has
  in
  ignore (accept st L.SEMI);
  if peek st <> L.EOF then fail_at st "trailing input after statement";
  stmt

(** Parse one MOL statement.  [env_has] tells the parser which
    molecule-type names are already defined (used to read a bare
    identifier in FROM as a reference rather than a one-node
    structure). *)
let parse ?(env_has = fun _ -> false) src =
  let toks = Array.of_list (Lexer.tokenize src) in
  parse_stmt { toks; pos = 0 } env_has
