(** Statement fingerprinting: a stable identity for a MOL statement's
    shape — literals and atom ids stripped, structure kept.

    Normalization happens on the AST (so concrete-syntax whitespace
    never matters) and the canonical text is the printer's rendering
    of the normalized tree, collapsed to one line.  The fingerprint is
    a non-negative FNV-1a hash of that text; [Mad_obs.Digest]
    aggregates per (fingerprint, plan hash). *)

val normalize : Ast.stmt -> Ast.stmt
(** Replace every literal with ['?'] and every atom id with [@0];
    structure, node names, predicate skeleton and statement kind are
    preserved. *)

val text : Ast.stmt -> string
(** The canonical normalized statement text (one line). *)

val hash : string -> int
(** Non-negative FNV-1a hash. *)

val of_stmt : Ast.stmt -> int * string
(** [(hash (text stmt), text stmt)] with one rendering. *)
