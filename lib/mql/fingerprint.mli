(** Statement fingerprinting: a stable identity for a MOL statement's
    shape — literals and atom ids stripped, structure kept.

    Normalization happens on the AST (so concrete-syntax whitespace
    never matters) and the canonical text is the printer's rendering
    of the normalized tree, collapsed to one line.  The fingerprint is
    a non-negative FNV-1a hash of that text; [Mad_obs.Digest]
    aggregates per (fingerprint, plan hash). *)

val normalize : Ast.stmt -> Ast.stmt
(** Replace every literal with ['?'] and every atom id with [@0];
    structure, node names, predicate skeleton and statement kind are
    preserved. *)

val text : Ast.stmt -> string
(** The canonical normalized statement text (one line). *)

val hash : string -> int
(** Non-negative FNV-1a hash. *)

val of_stmt : Ast.stmt -> int * string
(** [(hash (text stmt), text stmt)] with one rendering. *)

val class_of_source : string -> string
(** The statement class ("query", "insert", …, or "other") decided by
    the source's first keyword, without parsing — cheap enough for a
    per-request metrics label on the server's lock-profiling path.
    Unparseable input classifies as "other"; that is fine for a
    cardinality-bounded label. *)

val classes : string list
(** Every value {!class_of_source} can return — servers pre-register
    one histogram point per class so idle expositions already carry
    the full label set. *)
