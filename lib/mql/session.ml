(** MOL sessions: a database plus a catalog of molecule types defined
    by [DEFINE MOLECULE] (dynamic object definition — "our complex
    object definition is defined on demand in the queries and not fixed
    in the schema"). *)

open Mad_store

type outcome =
  | Defined of Mad.Molecule_type.t
  | Result of Translate.result
  | Inserted of Atom.t
  | Dml of string  (** summary of a manipulation statement's effect *)
  | Explained of string  (** EXPLAIN / EXPLAIN ANALYZE report *)

(** Extension slot for upper layers: this library sits below the
    physical engine, so per-session state owned by PRIMA (the adaptive
    statistics catalog, see [Prima.Adaptive]) is carried opaquely via
    an extensible variant rather than a direct dependency. *)
type ext = ..

type commit_handle = int

type t = {
  db : Database.t;
  env : (string, Mad.Molecule_type.t) Hashtbl.t;
  stats : Mad.Derive.stats;
  obs : Mad_obs.Obs.t;
  mutable ext : ext option;
  mutable commit_hooks : (commit_handle * (unit -> unit)) list;
      (** Run, in registration order, after every successful
          manipulation statement — the statement-level durability
          boundary.  A durable session registers the engine's group
          commit (flush + fsync) here, so autocommit costs one fsync
          per {e statement}, not per journal record; the network
          server registers a second hook that routes the statement
          through the cross-session commit coordinator.  Hooks are a
          list precisely so those two do not clobber each other. *)
  mutable hook_seq : int;  (** next {!commit_handle} *)
  mutable legacy_hook : commit_handle option;
      (** the hook owned by the deprecated {!set_on_commit} shim *)
  mutable digest : Mad_obs.Digest.t option;
      (** Workload digest; [None] (the default) records nothing.
          {!enable_digest} creates one against the session registry. *)
  mutable slow_guard : bool;
      (** True while a slow-log capture is re-running the statement
          (EXPLAIN ANALYZE) — suppresses recursive slow-logging. *)
  fp_cache : (string, int * string) Hashtbl.t;
      (** source text -> (fingerprint, normalized text): normalization
          prints the whole AST, so a repeated statement must not pay it
          twice ({!run} consults this before fingerprinting) *)
  mutable fp_mru : (string * (int * string)) option;
      (** the last {!run} source and its fingerprint — a driver looping
          one statement skips even the cache probe *)
  mutable refreshed_epoch : int;
      (** the database epoch the catalog was last re-derived at —
          {!refresh} consults the delta window between it and the
          current epoch to skip types the mutations cannot have
          touched *)
  mutable last_commit_us : float;
      (** wall-clock µs the last {!commit} spent in its hooks (WAL
          flush + fsync publication); [0] when the last statement
          committed nothing.  The server takes-and-resets this to
          attribute the WAL share of a request's latency to its own
          phase ({!take_last_commit_us}). *)
}

(** [EXPLAIN ANALYZE] needs the physical engine, which lives above this
    library; installing a profiler (see [Prima.Profile.install]) routes
    the statement there.  Without one, ANALYZE falls back to executing
    the statement and reporting the session-level actuals. *)
let analyze_hook : (t -> Ast.stmt -> string) option ref = ref None

(** The digest needs the physical plan's identity, which also lives
    above this library; [Prima.Adaptive.install] registers a hasher
    here.  Without one, digest rows fall back to a per-statement-kind
    pseudo plan. *)
let plan_hash_hook : (t -> fp:int -> Ast.stmt -> int) option ref = ref None

let create ?obs db =
  let obs = match obs with Some o -> o | None -> Mad_obs.Obs.default () in
  (* delta-track the database so refresh (and the kernel caches below
     it) can repair instead of rebuild after manipulation statements *)
  Mad_kernel.Delta.track db;
  {
    db;
    env = Hashtbl.create 16;
    stats = Mad.Derive.stats_in (Mad_obs.Obs.registry obs);
    obs;
    ext = None;
    commit_hooks = [];
    hook_seq = 0;
    legacy_hook = None;
    digest = None;
    slow_guard = false;
    fp_cache = Hashtbl.create 64;
    fp_mru = None;
    refreshed_epoch = Database.epoch db;
    last_commit_us = 0.0;
  }

let enable_digest t =
  match t.digest with
  | Some d -> d
  | None ->
    let d = Mad_obs.Digest.create (Mad_obs.Obs.registry t.obs) in
    t.digest <- Some d;
    d

(* commit hooks: a registration list, so the durability engine's group
   commit and the network server's commit coordinator can both observe
   statement boundaries without clobbering each other *)

let add_on_commit t f =
  let h = t.hook_seq in
  t.hook_seq <- t.hook_seq + 1;
  t.commit_hooks <- t.commit_hooks @ [ (h, f) ];
  h

let remove_on_commit t h =
  t.commit_hooks <- List.filter (fun (h', _) -> h' <> h) t.commit_hooks

(* deprecated shim over the registration list: owns at most one hook,
   replaced (or removed) on every call, as the old single mutable
   [on_commit] field behaved *)
let set_on_commit t f =
  (match t.legacy_hook with
   | Some h ->
     remove_on_commit t h;
     t.legacy_hook <- None
   | None -> ());
  match f with
  | None -> ()
  | Some f -> t.legacy_hook <- Some (add_on_commit t f)

(* the commit is timed as its own operator so fsync stalls show up in
   [op.latency_us{op=mql.commit}] (with a flight-recorder exemplar)
   instead of hiding inside the statement's latency *)
let commit t =
  match t.commit_hooks with
  | [] -> ()
  | hooks ->
    Mad_obs.Obs.timed t.obs "mql.commit" (fun _ ->
        List.iter (fun (_, f) -> f ()) hooks);
    let d = Mad_obs.Obs.last_dur_us t.obs in
    if d > 0.0 then t.last_commit_us <- t.last_commit_us +. d

let take_last_commit_us t =
  let d = t.last_commit_us in
  t.last_commit_us <- 0.0;
  d

let lookup t name = Hashtbl.find_opt t.env name

let define t name (mt : Mad.Molecule_type.t) =
  if Hashtbl.mem t.env name then
    Err.failf "molecule type %s already defined in this session" name;
  Hashtbl.replace t.env name mt

let parse t src = Parser.parse ~env_has:(Hashtbl.mem t.env) src

(* A named FROM definition ([mt_state(state-area-edge-point)]) enters
   the session catalog, as in ch. 4's mt_state example, and the query
   proceeds against the catalogued type. *)
let rec hoist_from t (from : Ast.from_item) : Ast.from_item =
  match from with
  | Ast.From_named_def (name, s) ->
    (match lookup t name with
     | Some _ -> ()
     | None ->
       let desc = Translate.resolve_structure t.db s in
       define t name (Mad.Molecule_algebra.define ~stats:t.stats t.db ~name desc));
    Ast.From_ref name
  | Ast.From_product (a, b) -> Ast.From_product (hoist_from t a, hoist_from t b)
  | (Ast.From_anon _ | Ast.From_ref _ | Ast.From_recursive _ | Ast.From_cycle _)
    as f ->
    f

let rec hoist_definitions t (q : Ast.qexpr) : Ast.qexpr =
  match q with
  | Ast.Q core -> Ast.Q { core with Ast.from = hoist_from t core.Ast.from }
  | Ast.Union (a, b) -> Ast.Union (hoist_definitions t a, hoist_definitions t b)
  | Ast.Diff (a, b) -> Ast.Diff (hoist_definitions t a, hoist_definitions t b)
  | Ast.Intersect (a, b) ->
    Ast.Intersect (hoist_definitions t a, hoist_definitions t b)

(* Manipulation statements change the occurrence, so cached molecule
   types in the catalog are re-derived afterwards (dynamic object
   definition makes this cheap and always consistent).  The delta
   window between the last refresh and the current epoch narrows the
   sweep: a type is re-derived only when the window touched one of its
   structure's atom types or link types — attribute-only windows touch
   neither (occurrences are structural; attribute values are fetched
   live at qualification time), so they re-derive nothing. *)
let refresh t =
  let e = Database.epoch t.db in
  if e <> t.refreshed_epoch then begin
    let w =
      Mad_kernel.Delta.window t.db ~from_epoch:t.refreshed_epoch ~to_epoch:e
    in
    let needs (mt : Mad.Molecule_type.t) =
      match w with
      | None -> true
      | Some w ->
        let d = mt.Mad.Molecule_type.desc in
        List.exists (Mad_kernel.Delta.touches_atype w) (Mad.Mdesc.nodes d)
        || List.exists
             (fun (edge : Mad.Mdesc.edge) ->
               Mad_kernel.Delta.touches_link w edge.link)
             (Mad.Mdesc.edges d)
    in
    Hashtbl.iter
      (fun name (mt : Mad.Molecule_type.t) ->
        if needs mt then
          Hashtbl.replace t.env name
            (Mad.Molecule_algebra.define ~stats:t.stats t.db ~name
               mt.Mad.Molecule_type.desc))
      (Hashtbl.copy t.env);
    t.refreshed_epoch <- e
  end

(* Resolve a DML target: the base molecule type plus the victims
   selected by the optional qualification. *)
let dml_target t from where =
  let mt =
    match from with
    | Ast.From_named_def (name, s) -> begin
      match lookup t name with
      | Some mt -> mt
      | None ->
        let desc = Translate.resolve_structure t.db s in
        let mt = Mad.Molecule_algebra.define ~stats:t.stats t.db ~name desc in
        define t name mt;
        mt
    end
    | Ast.From_ref name -> begin
      match lookup t name with
      | Some mt -> mt
      | None -> Err.failf "unknown molecule type %s" name
    end
    | Ast.From_anon s ->
      let desc = Translate.resolve_structure t.db s in
      Mad.Molecule_algebra.define ~stats:t.stats t.db
        ~name:(Mad.Molecule_algebra.gen_name "dml")
        desc
    | Ast.From_recursive _ | Ast.From_cycle _ ->
      Err.failf "manipulation statements do not accept recursive targets"
    | Ast.From_product _ ->
      Err.failf "manipulation statements do not accept product targets"
  in
  let victims =
    match where with
    | None -> Mad.Molecule_type.occ mt
    | Some pred ->
      Mad.Molecule_algebra.typecheck_qual t.db mt pred;
      List.filter
        (fun m -> Mad.Molecule_algebra.molecule_satisfies t.db mt m pred)
        (Mad.Molecule_type.occ mt)
  in
  (mt, victims)

(** EXPLAIN: the algebra plan a statement compiles to. *)
let rec explain_stmt t (stmt : Ast.stmt) =
  match stmt with
  | Ast.Define (name, s) ->
    Format.asprintf "α[%s](%a)" name Mad.Mdesc.pp
      (Translate.resolve_structure t.db s)
  | Ast.Query q ->
    Format.asprintf "%a" Translate.pp_plan (Translate.compile t.db (lookup t) q)
  | Ast.Explain { analyze = _; stmt } -> explain_stmt t stmt
  | (Ast.Insert _ | Ast.Link _ | Ast.Unlink _ | Ast.Delete _ | Ast.Modify _) as
    stmt ->
    Format.asprintf "manipulation: %a" Ast.pp_stmt stmt

let stmt_kind = function
  | Ast.Define _ -> "define"
  | Ast.Query _ -> "query"
  | Ast.Insert _ -> "insert"
  | Ast.Link _ -> "link"
  | Ast.Unlink _ -> "unlink"
  | Ast.Delete _ -> "delete"
  | Ast.Modify _ -> "modify"
  | Ast.Explain _ -> "explain"

(* Fault injection for health-probe smoke tests ([madql health
   --inject-slow]): busy-wait on {!Mad_obs.Span.clock} inside the
   statement's timed block, so the injected latency lands in the
   digest histograms the latency probe watches.  A spin (not a sleep)
   keeps this library free of a unix dependency and respects
   deterministic test clocks. *)
let fault_spin_ms : float option ref = ref None

let fault_spin () =
  match !fault_spin_ms with
  | Some ms when ms > 0.0 ->
    let until = !Mad_obs.Span.clock () +. (ms /. 1000.0) in
    while !Mad_obs.Span.clock () < until do
      ignore (Sys.opaque_identity ())
    done
  | Some _ | None -> ()

let rec eval_stmt_inner t (stmt : Ast.stmt) : outcome =
  (* one root span per statement; everything the engine does beneath —
     algebra operators, derivations, closure checks — nests under it *)
  Mad_obs.Obs.timed t.obs "mql.statement"
    ~attrs:[ ("kind", Mad_obs.Span.Str (stmt_kind stmt)) ]
  @@ fun _ ->
  fault_spin ();
  match stmt with
  | Ast.Define (name, s) ->
    let desc = Translate.resolve_structure t.db s in
    let mt =
      Mad.Molecule_algebra.define ~obs:t.obs ~stats:t.stats t.db ~name desc
    in
    define t name mt;
    Defined mt
  | Ast.Query q ->
    let q = hoist_definitions t q in
    let plan = Translate.compile t.db (lookup t) q in
    Result (Translate.run ~obs:t.obs ~stats:t.stats t.db (lookup t) plan)
  | Ast.Explain { analyze = false; stmt } -> Explained (explain_stmt t stmt)
  | Ast.Explain { analyze = true; stmt } -> begin
    match !analyze_hook with
    | Some hook -> Explained (hook t stmt)
    | None ->
      (* no physical engine installed: execute anyway and report the
         session-level actuals against the algebra plan *)
      let a0 = Mad.Derive.atoms_visited t.stats
      and l0 = Mad.Derive.links_traversed t.stats in
      let path = Mad.Derive.describe_path t.db in
      let t0 = !Mad_obs.Span.clock () in
      let outcome = eval_stmt_inner t stmt in
      let ms = (!Mad_obs.Span.clock () -. t0) *. 1000. in
      let molecules =
        match outcome with
        | Result (Translate.Molecules mt) ->
          Printf.sprintf "%d molecule(s), "
            (List.length (Mad.Molecule_type.occ mt))
        | Defined mt ->
          Printf.sprintf "%d molecule(s), "
            (List.length (Mad.Molecule_type.occ mt))
        | Result (Translate.Recursive _ | Translate.Cycles _)
        | Inserted _ | Dml _ | Explained _ ->
          ""
      in
      Explained
        (Format.asprintf
           "%s@.derive: %s@.actual: %s%d atoms visited, %d links traversed \
            (%.2f ms)"
           (explain_stmt t stmt) path molecules
           (Mad.Derive.atoms_visited t.stats - a0)
           (Mad.Derive.links_traversed t.stats - l0)
           ms)
  end
  | Ast.Insert { atype; values; links } ->
    let atom = Mad.Manipulate.insert_atom_linked t.db ~atype values ~links in
    refresh t;
    commit t;
    Inserted atom
  | Ast.Link { lt; left; right } ->
    let ltype = Database.link_type t.db lt in
    let e1, _ = ltype.Schema.Link_type.ends in
    let a_left = Database.atom t.db left in
    (* accept either role order for non-reflexive link types *)
    if String.equal a_left.Atom.atype e1 then
      Database.add_link t.db lt ~left ~right
    else Database.add_link t.db lt ~left:right ~right:left;
    refresh t;
    commit t;
    Dml (Printf.sprintf "linked @%d and @%d via %s" left right lt)
  | Ast.Unlink { lt; left; right } ->
    Database.remove_link t.db lt ~left ~right;
    Database.remove_link t.db lt ~left:right ~right:left;
    refresh t;
    commit t;
    Dml (Printf.sprintf "unlinked @%d and @%d via %s" left right lt)
  | Ast.Delete { from; where; detach } ->
    let mt, victims = dml_target t from where in
    let mode = if detach then `Unlink_only else `Shared_safe in
    let report = Mad.Manipulate.delete_molecules ~mode t.db mt victims in
    refresh t;
    commit t;
    Dml
      (Printf.sprintf
         "deleted %d molecule(s): %d atom(s) removed, %d shared atom(s) kept"
         report.Mad.Manipulate.molecules_deleted
         report.Mad.Manipulate.atoms_deleted
         report.Mad.Manipulate.atoms_kept_shared)
  | Ast.Modify { node; attr; value; from; where } ->
    let _, victims = dml_target t from where in
    let n = Mad.Manipulate.modify_attribute t.db ~node ~attr value victims in
    refresh t;
    commit t;
    Dml (Printf.sprintf "modified %s.%s on %d atom(s)" node attr n)

(* ------------------------------------------------------------------ *)
(* Workload digest & slow-query log                                     *)

let rows_of = function
  | Defined mt | Result (Translate.Molecules mt) ->
    List.length (Mad.Molecule_type.occ mt)
  | Result (Translate.Recursive r) ->
    List.length r.Mad_recursive.Recursive.occ
  | Result (Translate.Cycles c) ->
    List.length c.Mad_recursive.Recursive.cocc
  | Inserted _ -> 1
  | Dml _ | Explained _ -> 0

(* without the physical engine's hasher, the statement kind stands in
   for the plan — one pseudo plan per kind, so DML still aggregates *)
let fallback_plan stmt = Fingerprint.hash ("kind:" ^ stmt_kind stmt)

(** Capture a slow statement: full text, algebra plan, EXPLAIN ANALYZE
    tree (queries only — re-running DML would double-apply it) and the
    flight-recorder window since the statement started. *)
let slow_log t stmt ~fp ~plan ~ms ~seq0 =
  let plan_text =
    try explain_stmt t stmt with _ -> "<plan unavailable>"
  in
  let analyze =
    match (stmt, !analyze_hook) with
    | Ast.Query _, Some hook -> ( try Some (hook t stmt) with _ -> None)
    | _ -> None
  in
  let events =
    if Mad_obs.Recorder.enabled () then
      List.filter
        (fun ev -> ev.Mad_obs.Recorder.e_seq >= seq0)
        (Mad_obs.Recorder.drain (Mad_obs.Recorder.global ()))
    else []
  in
  Mad_obs.Digest.log_slow
    {
      Mad_obs.Digest.sl_stmt = Ast.to_string stmt;
      sl_fp = fp;
      sl_plan = plan;
      sl_ms = ms;
      sl_plan_text = plan_text;
      sl_analyze = analyze;
      sl_events = events;
    }

let maybe_slow_log t stmt ~fp ~plan ~ms ~seq0 =
  match Mad_obs.Digest.slow_threshold_ms () with
  | Some th when ms >= th && not t.slow_guard ->
    t.slow_guard <- true;
    Fun.protect
      ~finally:(fun () -> t.slow_guard <- false)
      (fun () -> slow_log t stmt ~fp ~plan ~ms ~seq0)
  | Some _ | None -> ()

let eval_stmt ?fp_text t (stmt : Ast.stmt) : outcome =
  match t.digest with
  | None -> eval_stmt_inner t stmt
  | Some dg ->
    let fp, text =
      match fp_text with
      | Some v -> v
      | None -> Fingerprint.of_stmt stmt
    in
    let plan =
      match !plan_hash_hook with
      | Some h -> ( try h t ~fp stmt with _ -> fallback_plan stmt)
      | None -> fallback_plan stmt
    in
    let seq0 = Mad_obs.Recorder.recorded (Mad_obs.Recorder.global ()) in
    (* [eval_stmt_inner] runs under [timed "mql.statement"], whose
       measurement we reuse; only a noop context (which never times)
       needs a clock pair of our own *)
    let noop_obs = Mad_obs.Obs.is_noop t.obs in
    let t0 = if noop_obs then !Mad_obs.Span.clock () else 0.0 in
    (match eval_stmt_inner t stmt with
     | outcome ->
       let ms =
         if noop_obs then (!Mad_obs.Span.clock () -. t0) *. 1e3
         else Mad_obs.Obs.last_dur_us t.obs /. 1e3
       in
       ignore
         (Mad_obs.Digest.record dg ~fp ~text ~plan ~latency_us:(ms *. 1e3)
            ~rows:(rows_of outcome) ~error:false
            ~exemplar:(Mad_obs.Obs.last_seq t.obs)
            ());
       maybe_slow_log t stmt ~fp ~plan ~ms ~seq0;
       outcome
     | exception e ->
       let ms =
         if noop_obs then (!Mad_obs.Span.clock () -. t0) *. 1e3
         else Mad_obs.Obs.last_dur_us t.obs /. 1e3
       in
       ignore
         (Mad_obs.Digest.record dg ~fp ~text ~plan ~latency_us:(ms *. 1e3)
            ~rows:0 ~error:true
            ~exemplar:(Mad_obs.Obs.last_seq t.obs)
            ());
       maybe_slow_log t stmt ~fp ~plan ~ms ~seq0;
       raise e)

(** Parse and evaluate one statement of MOL text.  The parse is timed
    as its own operator ([op.latency_us{op=mql.parse}]) so digest
    overhead attribution is complete. *)
let run t src =
  (* the statement path drives the global timeline (interval gated,
     near-free while MAD_OBS_TICK is unset); ticking even when the
     statement raises keeps frames arriving through error storms *)
  Fun.protect
    ~finally:(fun () ->
      Mad_obs.Timeline.auto_tick ~epoch:(Database.epoch t.db)
        (Mad_obs.Obs.registry t.obs))
  @@ fun () ->
  let stmt = Mad_obs.Obs.timed t.obs "mql.parse" (fun _ -> parse t src) in
  match t.digest with
  | None -> eval_stmt t stmt
  | Some _ ->
    let fp_text =
      match t.fp_mru with
      | Some (s, v) when s == src || String.equal s src -> v
      | _ ->
        let v =
          match Hashtbl.find t.fp_cache src with
          | v -> v
          | exception Not_found ->
            let v = Fingerprint.of_stmt stmt in
            (* bounded: a literal-heavy workload keys many sources to
               few fingerprints; reset rather than evict, it rewarms *)
            if Hashtbl.length t.fp_cache >= 1024 then
              Hashtbl.reset t.fp_cache;
            Hashtbl.replace t.fp_cache src v;
            v
        in
        t.fp_mru <- Some (src, v);
        v
    in
    eval_stmt ~fp_text t stmt

(** Evaluate and render the outcome as the CLI/examples print it. *)
let run_to_string t src =
  match run t src with
  | Defined mt ->
    Format.asprintf "defined %a" Mad.Molecule_type.pp_summary mt
  | Result (Translate.Molecules mt) ->
    Format.asprintf "%a" (fun ppf () -> Mad.Render.pp_molecule_type t.db ppf mt) ()
  | Result (Translate.Recursive r) ->
    Format.asprintf "%a" Mad_recursive.Recursive.pp (t.db, r)
  | Result (Translate.Cycles c) ->
    Format.asprintf "%a" Mad_recursive.Recursive.pp_cycle (t.db, c)
  | Inserted atom ->
    Format.asprintf "inserted %a as @%d" Fmt.string atom.Atom.atype
      atom.Atom.id
  | Dml msg -> msg
  | Explained report -> report

(** EXPLAIN: the algebra plan a statement compiles to. *)
let explain t src = explain_stmt t (parse t src)
