(** MOL sessions: a database plus a catalog of molecule types defined
    by [DEFINE MOLECULE] (dynamic object definition — "our complex
    object definition is defined on demand in the queries and not fixed
    in the schema"). *)

open Mad_store

type outcome =
  | Defined of Mad.Molecule_type.t
  | Result of Translate.result
  | Inserted of Atom.t
  | Dml of string  (** summary of a manipulation statement's effect *)
  | Explained of string  (** EXPLAIN / EXPLAIN ANALYZE report *)

(** Extension slot for upper layers: this library sits below the
    physical engine, so per-session state owned by PRIMA (the adaptive
    statistics catalog, see [Prima.Adaptive]) is carried opaquely via
    an extensible variant rather than a direct dependency. *)
type ext = ..

type t = {
  db : Database.t;
  env : (string, Mad.Molecule_type.t) Hashtbl.t;
  stats : Mad.Derive.stats;
  obs : Mad_obs.Obs.t;
  mutable ext : ext option;
  mutable on_commit : (unit -> unit) option;
      (** Called after every successful manipulation statement — the
          statement-level durability boundary.  A durable session
          installs the engine's group commit (flush + fsync) here, so
          autocommit costs one fsync per {e statement}, not per
          journal record. *)
}

(** [EXPLAIN ANALYZE] needs the physical engine, which lives above this
    library; installing a profiler (see [Prima.Profile.install]) routes
    the statement there.  Without one, ANALYZE falls back to executing
    the statement and reporting the session-level actuals. *)
let analyze_hook : (t -> Ast.stmt -> string) option ref = ref None

let create ?obs db =
  let obs = match obs with Some o -> o | None -> Mad_obs.Obs.default () in
  {
    db;
    env = Hashtbl.create 16;
    stats = Mad.Derive.stats_in (Mad_obs.Obs.registry obs);
    obs;
    ext = None;
    on_commit = None;
  }

(* the commit is timed as its own operator so fsync stalls show up in
   [op.latency_us{op=mql.commit}] (with a flight-recorder exemplar)
   instead of hiding inside the statement's latency *)
let commit t =
  match t.on_commit with
  | None -> ()
  | Some f -> Mad_obs.Obs.timed t.obs "mql.commit" (fun _ -> f ())

let lookup t name = Hashtbl.find_opt t.env name

let define t name (mt : Mad.Molecule_type.t) =
  if Hashtbl.mem t.env name then
    Err.failf "molecule type %s already defined in this session" name;
  Hashtbl.replace t.env name mt

let parse t src = Parser.parse ~env_has:(Hashtbl.mem t.env) src

(* A named FROM definition ([mt_state(state-area-edge-point)]) enters
   the session catalog, as in ch. 4's mt_state example, and the query
   proceeds against the catalogued type. *)
let rec hoist_from t (from : Ast.from_item) : Ast.from_item =
  match from with
  | Ast.From_named_def (name, s) ->
    (match lookup t name with
     | Some _ -> ()
     | None ->
       let desc = Translate.resolve_structure t.db s in
       define t name (Mad.Molecule_algebra.define ~stats:t.stats t.db ~name desc));
    Ast.From_ref name
  | Ast.From_product (a, b) -> Ast.From_product (hoist_from t a, hoist_from t b)
  | (Ast.From_anon _ | Ast.From_ref _ | Ast.From_recursive _ | Ast.From_cycle _)
    as f ->
    f

let rec hoist_definitions t (q : Ast.qexpr) : Ast.qexpr =
  match q with
  | Ast.Q core -> Ast.Q { core with Ast.from = hoist_from t core.Ast.from }
  | Ast.Union (a, b) -> Ast.Union (hoist_definitions t a, hoist_definitions t b)
  | Ast.Diff (a, b) -> Ast.Diff (hoist_definitions t a, hoist_definitions t b)
  | Ast.Intersect (a, b) ->
    Ast.Intersect (hoist_definitions t a, hoist_definitions t b)

(* Manipulation statements change the occurrence, so cached molecule
   types in the catalog are re-derived afterwards (dynamic object
   definition makes this cheap and always consistent). *)
let refresh t =
  Hashtbl.iter
    (fun name (mt : Mad.Molecule_type.t) ->
      Hashtbl.replace t.env name
        (Mad.Molecule_algebra.define ~stats:t.stats t.db ~name
           mt.Mad.Molecule_type.desc))
    (Hashtbl.copy t.env)

(* Resolve a DML target: the base molecule type plus the victims
   selected by the optional qualification. *)
let dml_target t from where =
  let mt =
    match from with
    | Ast.From_named_def (name, s) -> begin
      match lookup t name with
      | Some mt -> mt
      | None ->
        let desc = Translate.resolve_structure t.db s in
        let mt = Mad.Molecule_algebra.define ~stats:t.stats t.db ~name desc in
        define t name mt;
        mt
    end
    | Ast.From_ref name -> begin
      match lookup t name with
      | Some mt -> mt
      | None -> Err.failf "unknown molecule type %s" name
    end
    | Ast.From_anon s ->
      let desc = Translate.resolve_structure t.db s in
      Mad.Molecule_algebra.define ~stats:t.stats t.db
        ~name:(Mad.Molecule_algebra.gen_name "dml")
        desc
    | Ast.From_recursive _ | Ast.From_cycle _ ->
      Err.failf "manipulation statements do not accept recursive targets"
    | Ast.From_product _ ->
      Err.failf "manipulation statements do not accept product targets"
  in
  let victims =
    match where with
    | None -> Mad.Molecule_type.occ mt
    | Some pred ->
      Mad.Molecule_algebra.typecheck_qual t.db mt pred;
      List.filter
        (fun m -> Mad.Molecule_algebra.molecule_satisfies t.db mt m pred)
        (Mad.Molecule_type.occ mt)
  in
  (mt, victims)

(** EXPLAIN: the algebra plan a statement compiles to. *)
let rec explain_stmt t (stmt : Ast.stmt) =
  match stmt with
  | Ast.Define (name, s) ->
    Format.asprintf "α[%s](%a)" name Mad.Mdesc.pp
      (Translate.resolve_structure t.db s)
  | Ast.Query q ->
    Format.asprintf "%a" Translate.pp_plan (Translate.compile t.db (lookup t) q)
  | Ast.Explain { analyze = _; stmt } -> explain_stmt t stmt
  | (Ast.Insert _ | Ast.Link _ | Ast.Unlink _ | Ast.Delete _ | Ast.Modify _) as
    stmt ->
    Format.asprintf "manipulation: %a" Ast.pp_stmt stmt

let stmt_kind = function
  | Ast.Define _ -> "define"
  | Ast.Query _ -> "query"
  | Ast.Insert _ -> "insert"
  | Ast.Link _ -> "link"
  | Ast.Unlink _ -> "unlink"
  | Ast.Delete _ -> "delete"
  | Ast.Modify _ -> "modify"
  | Ast.Explain _ -> "explain"

let rec eval_stmt t (stmt : Ast.stmt) : outcome =
  (* one root span per statement; everything the engine does beneath —
     algebra operators, derivations, closure checks — nests under it *)
  Mad_obs.Obs.timed t.obs "mql.statement"
    ~attrs:[ ("kind", Mad_obs.Span.Str (stmt_kind stmt)) ]
  @@ fun _ ->
  match stmt with
  | Ast.Define (name, s) ->
    let desc = Translate.resolve_structure t.db s in
    let mt =
      Mad.Molecule_algebra.define ~obs:t.obs ~stats:t.stats t.db ~name desc
    in
    define t name mt;
    Defined mt
  | Ast.Query q ->
    let q = hoist_definitions t q in
    let plan = Translate.compile t.db (lookup t) q in
    Result (Translate.run ~obs:t.obs ~stats:t.stats t.db (lookup t) plan)
  | Ast.Explain { analyze = false; stmt } -> Explained (explain_stmt t stmt)
  | Ast.Explain { analyze = true; stmt } -> begin
    match !analyze_hook with
    | Some hook -> Explained (hook t stmt)
    | None ->
      (* no physical engine installed: execute anyway and report the
         session-level actuals against the algebra plan *)
      let a0 = Mad.Derive.atoms_visited t.stats
      and l0 = Mad.Derive.links_traversed t.stats in
      let path = Mad.Derive.describe_path t.db in
      let t0 = !Mad_obs.Span.clock () in
      let outcome = eval_stmt t stmt in
      let ms = (!Mad_obs.Span.clock () -. t0) *. 1000. in
      let molecules =
        match outcome with
        | Result (Translate.Molecules mt) ->
          Printf.sprintf "%d molecule(s), "
            (List.length (Mad.Molecule_type.occ mt))
        | Defined mt ->
          Printf.sprintf "%d molecule(s), "
            (List.length (Mad.Molecule_type.occ mt))
        | Result (Translate.Recursive _ | Translate.Cycles _)
        | Inserted _ | Dml _ | Explained _ ->
          ""
      in
      Explained
        (Format.asprintf
           "%s@.derive: %s@.actual: %s%d atoms visited, %d links traversed \
            (%.2f ms)"
           (explain_stmt t stmt) path molecules
           (Mad.Derive.atoms_visited t.stats - a0)
           (Mad.Derive.links_traversed t.stats - l0)
           ms)
  end
  | Ast.Insert { atype; values; links } ->
    let atom = Mad.Manipulate.insert_atom_linked t.db ~atype values ~links in
    refresh t;
    commit t;
    Inserted atom
  | Ast.Link { lt; left; right } ->
    let ltype = Database.link_type t.db lt in
    let e1, _ = ltype.Schema.Link_type.ends in
    let a_left = Database.atom t.db left in
    (* accept either role order for non-reflexive link types *)
    if String.equal a_left.Atom.atype e1 then
      Database.add_link t.db lt ~left ~right
    else Database.add_link t.db lt ~left:right ~right:left;
    refresh t;
    commit t;
    Dml (Printf.sprintf "linked @%d and @%d via %s" left right lt)
  | Ast.Unlink { lt; left; right } ->
    Database.remove_link t.db lt ~left ~right;
    Database.remove_link t.db lt ~left:right ~right:left;
    refresh t;
    commit t;
    Dml (Printf.sprintf "unlinked @%d and @%d via %s" left right lt)
  | Ast.Delete { from; where; detach } ->
    let mt, victims = dml_target t from where in
    let mode = if detach then `Unlink_only else `Shared_safe in
    let report = Mad.Manipulate.delete_molecules ~mode t.db mt victims in
    refresh t;
    commit t;
    Dml
      (Printf.sprintf
         "deleted %d molecule(s): %d atom(s) removed, %d shared atom(s) kept"
         report.Mad.Manipulate.molecules_deleted
         report.Mad.Manipulate.atoms_deleted
         report.Mad.Manipulate.atoms_kept_shared)
  | Ast.Modify { node; attr; value; from; where } ->
    let _, victims = dml_target t from where in
    let n = Mad.Manipulate.modify_attribute t.db ~node ~attr value victims in
    refresh t;
    commit t;
    Dml (Printf.sprintf "modified %s.%s on %d atom(s)" node attr n)

(** Parse and evaluate one statement of MOL text. *)
let run t src = eval_stmt t (parse t src)

(** Evaluate and render the outcome as the CLI/examples print it. *)
let run_to_string t src =
  match run t src with
  | Defined mt ->
    Format.asprintf "defined %a" Mad.Molecule_type.pp_summary mt
  | Result (Translate.Molecules mt) ->
    Format.asprintf "%a" (fun ppf () -> Mad.Render.pp_molecule_type t.db ppf mt) ()
  | Result (Translate.Recursive r) ->
    Format.asprintf "%a" Mad_recursive.Recursive.pp (t.db, r)
  | Result (Translate.Cycles c) ->
    Format.asprintf "%a" Mad_recursive.Recursive.pp_cycle (t.db, c)
  | Inserted atom ->
    Format.asprintf "inserted %a as @%d" Fmt.string atom.Atom.atype
      atom.Atom.id
  | Dml msg -> msg
  | Explained report -> report

(** EXPLAIN: the algebra plan a statement compiles to. *)
let explain t src = explain_stmt t (parse t src)
