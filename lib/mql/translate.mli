(** Translation of MOL to the molecule algebra (ch. 4): queries compile
    to algebra plans (α Σ Π Ω Δ Ψ, or the recursive extension's
    operator) and only those are executed — MOL's semantics {e is} the
    algebra. *)

open Mad_store

type result =
  | Molecules of Mad.Molecule_type.t
  | Recursive of Mad_recursive.Recursive.t
  | Cycles of Mad_recursive.Recursive.cycle_t

val resolve_structure : Database.t -> Ast.structure -> Mad.Mdesc.t
(** Resolve ['-'] shorthands (the unique link type between adjacent
    atom types) and validate. *)

type plan =
  | P_define of string * Mad.Mdesc.t  (** α *)
  | P_ref of string
  | P_restrict of Mad.Qual.t * plan  (** Σ *)
  | P_project of (string * string list option) list * plan  (** Π *)
  | P_union of plan * plan  (** Ω *)
  | P_diff of plan * plan  (** Δ *)
  | P_intersect of plan * plan  (** Ψ *)
  | P_product of plan * plan  (** X *)
  | P_recursive of Mad_recursive.Recursive.desc * Mad.Qual.t option
  | P_cycle of Mad_recursive.Recursive.cycle_desc * Mad.Qual.t option

val pp_plan : Format.formatter -> plan -> unit

val compile :
  Database.t -> (string -> Mad.Molecule_type.t option) -> Ast.qexpr -> plan

val run :
  ?obs:Mad_obs.Obs.t ->
  ?stats:Mad.Derive.stats ->
  Database.t ->
  (string -> Mad.Molecule_type.t option) ->
  plan ->
  result
(** [obs] gives every executed algebra operator its span; [stats]
    accounts the derivation work. *)
