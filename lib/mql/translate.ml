(** Translation of MOL statements into the molecule algebra (ch. 4:
    "this algebra is used as a sound basis to express the semantics of
    the high level query language MOL").

    The evaluator never interprets the AST against the data directly:
    a query is compiled to molecule-algebra operations (α for the FROM
    clause, Σ for WHERE, Π for SELECT, Ω/Δ/Ψ for the set combinators)
    and those are executed. *)

open Mad_store
module R = Mad_recursive.Recursive

type result =
  | Molecules of Mad.Molecule_type.t
  | Recursive of R.t
  | Cycles of R.cycle_t

(** Resolve a parsed structure against the database: every [Auto] link
    must denote exactly one link type between its two atom types
    (the ['-'] shorthand of ch. 4 — "If there is only one link type
    defined between two atom types we can simplify the syntax"). *)
let resolve_structure db (s : Ast.structure) : Mad.Mdesc.t =
  let edges =
    List.map
      (fun (l, f, t) ->
        match l with
        | Ast.Via name -> (name, f, t)
        | Ast.Auto -> begin
          match Database.link_types_between db f t with
          | [ lt ] -> (lt.Schema.Link_type.name, f, t)
          | [] -> Err.failf "no link type between %s and %s" f t
          | several ->
            Err.failf
              "several link types between %s and %s (%s); name one with \
               -[link]-"
              f t
              (String.concat ", "
                 (List.map (fun (lt : Schema.Link_type.t) -> lt.name) several))
        end)
      s.Ast.s_edges
  in
  Mad.Mdesc.v db ~nodes:s.Ast.s_nodes ~edges

(** The algebra expression a query compiles to (surfaced by EXPLAIN). *)
type plan =
  | P_define of string * Mad.Mdesc.t  (** α *)
  | P_ref of string
  | P_restrict of Mad.Qual.t * plan  (** Σ *)
  | P_project of (string * string list option) list * plan  (** Π *)
  | P_union of plan * plan  (** Ω *)
  | P_diff of plan * plan  (** Δ *)
  | P_intersect of plan * plan  (** Ψ *)
  | P_product of plan * plan  (** X *)
  | P_recursive of R.desc * Mad.Qual.t option
  | P_cycle of R.cycle_desc * Mad.Qual.t option

let rec pp_plan ppf = function
  | P_define (n, d) -> Fmt.pf ppf "α[%s](%a)" n Mad.Mdesc.pp d
  | P_ref n -> Fmt.pf ppf "ref(%s)" n
  | P_restrict (q, p) -> Fmt.pf ppf "Σ[%a](%a)" Mad.Qual.pp q pp_plan p
  | P_project (items, p) ->
    Fmt.pf ppf "Π[%a](%a)"
      Fmt.(
        list ~sep:(any ",") (fun ppf (n, attrs) ->
            match attrs with
            | None -> Fmt.string ppf n
            | Some l -> Fmt.pf ppf "%s(%s)" n (String.concat "," l)))
      items pp_plan p
  | P_union (a, b) -> Fmt.pf ppf "Ω(%a, %a)" pp_plan a pp_plan b
  | P_diff (a, b) -> Fmt.pf ppf "Δ(%a, %a)" pp_plan a pp_plan b
  | P_intersect (a, b) -> Fmt.pf ppf "Ψ(%a, %a)" pp_plan a pp_plan b
  | P_product (a, b) -> Fmt.pf ppf "X(%a, %a)" pp_plan a pp_plan b
  | P_recursive (d, q) ->
    Fmt.pf ppf "ρ[%a]%a" R.pp_desc d
      Fmt.(option (fun ppf q -> Fmt.pf ppf "[%a]" Mad.Qual.pp q))
      q
  | P_cycle (d, q) ->
    Fmt.pf ppf "ρ°[%a]%a" R.pp_cycle_desc d
      Fmt.(option (fun ppf q -> Fmt.pf ppf "[%a]" Mad.Qual.pp q))
      q

let fresh_query_name =
  let k = ref 0 in
  fun () ->
    incr k;
    Printf.sprintf "q%d" !k

(** Compile a query to a plan.  Recursive FROM items compile to the
    recursive extension's operator; they do not combine with Π or the
    set operators (Schöning's extension keeps them first-class but our
    scope restricts them to SELECT ALL). *)
let rec compile db (env : string -> Mad.Molecule_type.t option) (q : Ast.qexpr) : plan =
  match q with
  | Ast.Q { select; from; where } -> begin
    match from with
    | Ast.From_recursive { root; link; view; depth; with_structure } ->
      if select <> Ast.All then
        Err.failf "recursive molecule types support SELECT ALL only";
      let component = Option.map (resolve_structure db) with_structure in
      P_recursive
        (R.v db ~root_type:root ~link ~view ?max_depth:depth ?component (),
         where)
    | Ast.From_cycle { root; steps; depth } ->
      if select <> Ast.All then
        Err.failf "cycle recursion supports SELECT ALL only";
      let steps =
        List.map (fun (l, bwd) -> (l, if bwd then `Bwd else `Fwd)) steps
      in
      P_cycle (R.cycle db ~root_type:root ~steps ?max_depth:depth (), where)
    | (Ast.From_named_def _ | Ast.From_anon _ | Ast.From_ref _
      | Ast.From_product _) as from ->
      wrap select where (compile_from db env from)
  end
  | Ast.Union (a, b) -> P_union (compile db env a, compile db env b)
  | Ast.Diff (a, b) -> P_diff (compile db env a, compile db env b)
  | Ast.Intersect (a, b) -> P_intersect (compile db env a, compile db env b)

and compile_from db env = function
  | Ast.From_named_def (name, s) -> P_define (name, resolve_structure db s)
  | Ast.From_anon s -> P_define (fresh_query_name (), resolve_structure db s)
  | Ast.From_ref name ->
    if env name = None then Err.failf "unknown molecule type %s" name;
    P_ref name
  | Ast.From_product (a, b) ->
    P_product (compile_from db env a, compile_from db env b)
  | Ast.From_recursive _ | Ast.From_cycle _ ->
    Err.failf "recursive molecule types cannot feed the product"

and wrap select where plan =
  let plan =
    match where with None -> plan | Some p -> P_restrict (p, plan)
  in
  match select with
  | Ast.All -> plan
  | Ast.Items items -> P_project (items, plan)

(** Execute a plan.  [stats] feeds the PRIMA access counters; [obs]
    gives every algebra operator its span.  The set operators dispatch
    on the operand kind: two molecule types go through Ω/Δ/Ψ, two
    recursive types through the recursive extension's set operators;
    mixing the two kinds is an error. *)
let rec run ?(obs = Mad_obs.Obs.noop) ?stats db env plan : result =
  let molecule p =
    match run ~obs ?stats db env p with
    | Molecules mt -> mt
    | Recursive _ | Cycles _ ->
      Err.failf "recursive molecule types cannot feed this operator"
  in
  let setop p1 p2 ~mol ~rec_ =
    match (run ~obs ?stats db env p1, run ~obs ?stats db env p2) with
    | Molecules a, Molecules b -> Molecules (mol a b)
    | Recursive a, Recursive b -> Recursive (rec_ a b)
    | (Molecules _ | Recursive _ | Cycles _), _ ->
      Err.failf "set operators cannot mix result kinds"
  in
  match plan with
  | P_define (name, desc) ->
    Molecules (Mad.Molecule_algebra.define ~obs ?stats db ~name desc)
  | P_ref name -> begin
    match env name with
    | Some mt -> Molecules mt
    | None -> Err.failf "unknown molecule type %s" name
  end
  | P_restrict (q, p) ->
    Molecules (Mad.Molecule_algebra.restrict ~obs ?stats db q (molecule p))
  | P_project (items, p) ->
    Molecules (Mad.Molecule_algebra.project ~obs ?stats db items (molecule p))
  | P_union (a, b) ->
    setop a b
      ~mol:(fun x y -> Mad.Molecule_algebra.union ~obs ?stats db x y)
      ~rec_:(fun x y -> R.union ~name:(fresh_query_name ()) x y)
  | P_diff (a, b) ->
    setop a b
      ~mol:(fun x y -> Mad.Molecule_algebra.diff ~obs ?stats db x y)
      ~rec_:(fun x y -> R.diff ~name:(fresh_query_name ()) x y)
  | P_intersect (a, b) ->
    setop a b
      ~mol:(fun x y -> Mad.Molecule_algebra.intersect ~obs ?stats db x y)
      ~rec_:(fun x y -> R.intersect ~name:(fresh_query_name ()) x y)
  | P_product (a, b) ->
    Molecules
      (Mad.Molecule_algebra.product ~obs ?stats db (molecule a) (molecule b))
  | P_recursive (d, where) -> begin
    let t = R.define ?stats db ~name:(fresh_query_name ()) d in
    match where with
    | None -> Recursive t
    | Some q -> Recursive (R.restrict db q t ~name:(t.R.name ^ "_sigma"))
  end
  | P_cycle (d, where) -> begin
    let t = R.cycle_define db ~name:(fresh_query_name ()) d in
    match where with
    | None -> Cycles t
    | Some q -> Cycles (R.cycle_restrict db q t ~name:(t.R.cname ^ "_sigma"))
  end
