(** Hand-written lexer for MOL.  Keywords are case-insensitive; ['-']
    separates structure steps (link names containing dashes are written
    [-[name]-]); strings are single-quoted with [''] escaping; [@123]
    is an atom identity. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | ATID of int
  | KW of string  (** uppercased keyword *)
  | LPAREN
  | RPAREN
  | LBRACKET_LINK of string  (** a [-[name]-] or [[name]-] unit *)
  | DASH
  | TILDE
  | COMMA
  | DOT
  | SEMI
  | STAR
  | PLUS
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

val keywords : string list
val pp_token : Format.formatter -> token -> unit

val tokenize : string -> token list
(** Ends with {!EOF}; fails with {!Mad_store.Err.Mad_error} on lexical
    errors. *)
