(** Abstract syntax of MOL (the molecule query language, ch. 4).

    The FROM clause carries the dynamic molecule-type definition: a
    linear rendering of the structure graph in the paper's notation
    ([state-area-edge-point], [point-edge-(area-state,net-river)]),
    where ['-'] resolves the unique link type between the adjacent atom
    types and [-[lname]-] names it explicitly (needed when several link
    types connect the same pair).  A node may occur in several branches;
    all its occurrences denote the same structure node — Def. 5 makes C
    a set — which makes diamonds expressible.

    Grammar (informal):
    {v
    stmt      ::= DEFINE MOLECULE name AS structure ';'
                | qexpr ';'
    qexpr     ::= query (UNION|DIFF|INTERSECT query)*
    query     ::= SELECT sel FROM from (WHERE pred)?
    sel       ::= ALL | node[(attr,...)] (',' node[(attr,...)])*
    from      ::= name '(' structure ')'      named definition
                | structure                   anonymous definition
                | name                        previously defined type
                | node RECURSIVE BY link (SUPER|SUB)? (DEPTH int)?
    structure ::= path
    path      ::= node step*
    step      ::= '-' seg | '-[' linkname ']-' seg
    seg       ::= node | '(' path (',' path)* ')'
    v} *)

type link_ref = Auto | Via of string

(** Structure edges in appearance order; [structure] keeps the node
    list (first occurrence order, head = root). *)
type structure = {
  s_nodes : string list;
  s_edges : (link_ref * string * string) list;
}

type select_list = All | Items of (string * string list option) list

type from_item =
  | From_named_def of string * structure  (** [mt_state(state-area-...)] *)
  | From_anon of structure
  | From_ref of string  (** previously defined molecule type *)
  | From_recursive of {
      root : string;
      link : string;
      view : Mad_recursive.Recursive.view;
      depth : int option;
      with_structure : structure option;
          (** component structure each reached atom expands *)
    }
  | From_product of from_item * from_item
      (** [FROM a, b]: the molecule-type cartesian product X *)
  | From_cycle of {
      root : string;
      steps : (string * bool) list;
          (** (link, backward?) — [cell RECURSIVE BY (cell-pin,
              ~net-pin, net-pin, ~cell-pin)] *)
      depth : int option;
    }

type query = {
  select : select_list;
  from : from_item;
  where : Mad.Qual.t option;
}

type qexpr =
  | Q of query
  | Union of qexpr * qexpr
  | Diff of qexpr * qexpr
  | Intersect of qexpr * qexpr

type stmt =
  | Define of string * structure
  | Query of qexpr
  | Insert of {
      atype : string;
      values : Mad_store.Value.t list;
      links : (string * Mad_store.Aid.t) list;
    }
  | Link of { lt : string; left : Mad_store.Aid.t; right : Mad_store.Aid.t }
  | Unlink of { lt : string; left : Mad_store.Aid.t; right : Mad_store.Aid.t }
  | Delete of { from : from_item; where : Mad.Qual.t option; detach : bool }
  | Modify of {
      node : string;
      attr : string;
      value : Mad_store.Value.t;
      from : from_item;
      where : Mad.Qual.t option;
    }
  | Explain of { analyze : bool; stmt : stmt }
      (** [EXPLAIN] shows the plan; [EXPLAIN ANALYZE] also executes the
          statement and reports estimated vs. actual work *)

(* ------------------------------------------------------------------ *)
(* Pretty printing (MOL concrete syntax; parse ∘ print = id)            *)

let pp_link_ref ppf = function
  | Auto -> Fmt.string ppf "-"
  | Via l -> Fmt.pf ppf "-[%s]-" l

(** Print a structure back to the linear notation.  We re-linearize
    from the edge list: depth-first from the root, sharing rendered by
    repeating the node name. *)
let pp_structure ppf (s : structure) =
  match s.s_nodes with
  | [] -> ()
  | root :: _ ->
    let rec out ppf node =
      let outs =
        List.filter (fun (_, f, _) -> String.equal f node) s.s_edges
      in
      Fmt.string ppf node;
      match outs with
      | [] -> ()
      | [ (l, _, t) ] -> Fmt.pf ppf "%a%a" pp_link_ref l out t
      | many ->
        Fmt.pf ppf "-(%a)"
          Fmt.(
            list ~sep:(any ",") (fun ppf (l, _, t) ->
                match l with
                | Auto -> out ppf t
                | Via ln -> Fmt.pf ppf "[%s]-%a" ln out t))
          many
    in
    out ppf root

let pp_select ppf = function
  | All -> Fmt.string ppf "ALL"
  | Items items ->
    Fmt.(list ~sep:(any ", "))
      (fun ppf (n, attrs) ->
        match attrs with
        | None -> Fmt.string ppf n
        | Some attrs ->
          Fmt.pf ppf "%s(%a)" n Fmt.(list ~sep:(any ",") string) attrs)
      ppf items

let rec pp_from ppf = function
  | From_product (a, b) -> Fmt.pf ppf "%a, %a" pp_from a pp_from b
  | From_named_def (n, s) -> Fmt.pf ppf "%s(%a)" n pp_structure s
  | From_anon s -> pp_structure ppf s
  | From_ref n -> Fmt.string ppf n
  | From_recursive { root; link; view; depth; with_structure } ->
    Fmt.pf ppf "%s RECURSIVE BY %s%s%a%a" root link
      (match view with
       | Mad_recursive.Recursive.Sub -> ""
       | Mad_recursive.Recursive.Super -> " SUPER")
      Fmt.(option (fmt " DEPTH %d"))
      depth
      Fmt.(option (fun ppf s -> Fmt.pf ppf " WITH %a" pp_structure s))
      with_structure
  | From_cycle { root; steps; depth } ->
    Fmt.pf ppf "%s RECURSIVE BY (%a)%a" root
      Fmt.(
        list ~sep:(any ", ") (fun ppf (l, bwd) ->
            Fmt.pf ppf "%s%s" (if bwd then "~" else "") l))
      steps
      Fmt.(option (fmt " DEPTH %d"))
      depth

let pp_query ppf q =
  Fmt.pf ppf "SELECT %a@ FROM %a" pp_select q.select pp_from q.from;
  match q.where with
  | None -> ()
  | Some p -> Fmt.pf ppf "@ WHERE %a" Mad.Qual.pp p

let rec pp_qexpr ppf = function
  | Q q -> pp_query ppf q
  | Union (a, b) -> Fmt.pf ppf "%a@ UNION %a" pp_qexpr a pp_qexpr b
  | Diff (a, b) -> Fmt.pf ppf "%a@ DIFF %a" pp_qexpr a pp_qexpr b
  | Intersect (a, b) -> Fmt.pf ppf "%a@ INTERSECT %a" pp_qexpr a pp_qexpr b

let rec pp_stmt ppf = function
  | Define (n, s) -> Fmt.pf ppf "@[<hv>DEFINE MOLECULE %s AS %a;@]" n pp_structure s
  | Query q -> Fmt.pf ppf "@[<hv>%a;@]" pp_qexpr q
  | Insert { atype; values; links } ->
    Fmt.pf ppf "@[<hv>INSERT INTO %s VALUES (%a)%a;@]" atype
      Fmt.(list ~sep:(any ", ") Mad_store.Value.pp)
      values
      Fmt.(
        list ~sep:nop (fun ppf (lt, id) ->
            Fmt.pf ppf " LINK %s @%d" lt id))
      links
  | Link { lt; left; right } -> Fmt.pf ppf "LINK %s @%d @%d;" lt left right
  | Unlink { lt; left; right } -> Fmt.pf ppf "UNLINK %s @%d @%d;" lt left right
  | Delete { from; where; detach } ->
    Fmt.pf ppf "@[<hv>DELETE FROM %a%a%s;@]" pp_from from
      Fmt.(option (fun ppf q -> Fmt.pf ppf "@ WHERE %a" Mad.Qual.pp q))
      where
      (if detach then " DETACH" else "")
  | Modify { node; attr; value; from; where } ->
    Fmt.pf ppf "@[<hv>MODIFY %s.%s = %a FROM %a%a;@]" node attr
      Mad_store.Value.pp value pp_from from
      Fmt.(option (fun ppf q -> Fmt.pf ppf "@ WHERE %a" Mad.Qual.pp q))
      where
  | Explain { analyze; stmt } ->
    Fmt.pf ppf "EXPLAIN %s%a" (if analyze then "ANALYZE " else "") pp_stmt stmt

let to_string stmt = Format.asprintf "%a" pp_stmt stmt
