(** Statement fingerprinting: the identity of a statement's {e shape}.

    A fingerprint abstracts a MOL statement over its parameters —
    every literal collapses to the placeholder ['?'], atom ids to
    [@0] — while keeping the structure graph, selected nodes,
    predicate skeleton and statement kind.  Two executions of "the
    same query with different constants" then share a digest row, the
    pg_stat_statements notion of identity lifted to molecule
    statements.

    Normalization works on the AST, so whitespace and other concrete-
    syntax noise never reach the hash: the canonical text is
    [Ast.to_string] of the normalized tree (parse ∘ print = id makes
    the printer a canonical form), collapsed to one line. *)

let placeholder = Mad_store.Value.String "?"

let normalize_from = Fun.id
(* the FROM clause is pure structure (node/link names, recursion
   depth); nothing to strip *)

let normalize_query (q : Ast.query) =
  { q with Ast.where = Option.map Mad.Qual.strip_consts q.Ast.where }

let rec normalize_qexpr = function
  | Ast.Q q -> Ast.Q (normalize_query q)
  | Ast.Union (a, b) -> Ast.Union (normalize_qexpr a, normalize_qexpr b)
  | Ast.Diff (a, b) -> Ast.Diff (normalize_qexpr a, normalize_qexpr b)
  | Ast.Intersect (a, b) ->
    Ast.Intersect (normalize_qexpr a, normalize_qexpr b)

let rec normalize (stmt : Ast.stmt) =
  match stmt with
  | Ast.Define _ -> stmt
  | Ast.Query q -> Ast.Query (normalize_qexpr q)
  | Ast.Insert { atype; values; links } ->
    Ast.Insert
      {
        atype;
        values = List.map (fun _ -> placeholder) values;
        links = List.map (fun (lt, _) -> (lt, 0)) links;
      }
  | Ast.Link { lt; _ } -> Ast.Link { lt; left = 0; right = 0 }
  | Ast.Unlink { lt; _ } -> Ast.Unlink { lt; left = 0; right = 0 }
  | Ast.Delete { from; where; detach } ->
    Ast.Delete
      {
        from = normalize_from from;
        where = Option.map Mad.Qual.strip_consts where;
        detach;
      }
  | Ast.Modify { node; attr; value = _; from; where } ->
    Ast.Modify
      {
        node;
        attr;
        value = placeholder;
        from = normalize_from from;
        where = Option.map Mad.Qual.strip_consts where;
      }
  | Ast.Explain { analyze; stmt } ->
    Ast.Explain { analyze; stmt = normalize stmt }

(* collapse all whitespace runs (the printer's line breaks included)
   to single spaces, so the canonical text is margin-independent *)
let oneline s =
  let buf = Buffer.create (String.length s) in
  let pending = ref false in
  let started = ref false in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\n' | '\t' | '\r' -> if !started then pending := true
      | c ->
        if !pending then Buffer.add_char buf ' ';
        pending := false;
        started := true;
        Buffer.add_char buf c)
    s;
  Buffer.contents buf

let text stmt = oneline (Ast.to_string (normalize stmt))

(* FNV-1a over native ints; multiplication wraps modulo 2^63, and the
   final mask forces a non-negative result (hex-printable, storable) *)
let fnv_basis = 0x03345778_9ABCDEF1
let fnv_prime = 0x100000001b3

let hash s =
  let h = ref fnv_basis in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * fnv_prime)
    s;
  !h land max_int

let of_stmt stmt =
  let t = text stmt in
  (hash t, t)

(* Statement class from raw source, without parsing: the first keyword
   decides.  This runs on the server's lock-profiling hot path — for
   every request, possibly before the statement is even parseable — so
   it must be allocation-light and total. *)
let class_of_source src =
  let n = String.length src in
  let i = ref 0 in
  while
    !i < n
    && (match src.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    incr i
  done;
  let start = !i in
  while
    !i < n
    &&
    match src.[!i] with
    | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
    | _ -> false
  do
    incr i
  done;
  let kw = String.uppercase_ascii (String.sub src start (!i - start)) in
  match kw with
  | "SELECT" -> "query"
  | "INSERT" -> "insert"
  | "DELETE" -> "delete"
  | "MODIFY" -> "modify"
  | "LINK" -> "link"
  | "UNLINK" -> "unlink"
  | "DEFINE" -> "define"
  | "EXPLAIN" -> "explain"
  | _ -> "other"

let classes =
  [ "query"; "insert"; "delete"; "modify"; "link"; "unlink"; "define";
    "explain"; "other" ]
