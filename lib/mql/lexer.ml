(** Hand-written lexer for MOL.

    Identifiers are [A-Za-z_][A-Za-z0-9_]*; keywords are matched
    case-insensitively.  ['-'] is the structure separator (link names
    containing dashes are written inside brackets: [-[area-edge]-]).
    Strings are single-quoted with [''] as the escape for a quote. *)

open Mad_store

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | ATID of int  (** atom identity literal [@123] *)
  | KW of string  (** uppercased keyword *)
  | LPAREN
  | RPAREN
  | LBRACKET_LINK of string  (** the whole [-[name]-] unit *)
  | DASH
  | TILDE
  | COMMA
  | DOT
  | SEMI
  | STAR
  | PLUS
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "ALL"; "AND"; "OR"; "NOT"; "EXISTS"; "FORALL";
    "COUNT"; "UNION"; "DIFF"; "INTERSECT"; "DEFINE"; "MOLECULE"; "AS";
    "RECURSIVE"; "BY"; "DEPTH"; "SUB"; "SUPER"; "TRUE"; "FALSE"; "INSERT";
    "INTO"; "VALUES"; "LINK"; "UNLINK"; "DELETE"; "DETACH"; "MODIFY";
    "SUM"; "MIN"; "MAX"; "AVG"; "WITH"; "EXPLAIN"; "ANALYZE";
  ]

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %s" s
  | ATID i -> Fmt.pf ppf "@%d" i
  | INT i -> Fmt.pf ppf "integer %d" i
  | FLOAT f -> Fmt.pf ppf "float %f" f
  | STRING s -> Fmt.pf ppf "string '%s'" s
  | KW k -> Fmt.string ppf k
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | LBRACKET_LINK l -> Fmt.pf ppf "-[%s]-" l
  | DASH -> Fmt.string ppf "-"
  | TILDE -> Fmt.string ppf "~"
  | COMMA -> Fmt.string ppf ","
  | DOT -> Fmt.string ppf "."
  | SEMI -> Fmt.string ppf ";"
  | STAR -> Fmt.string ppf "*"
  | PLUS -> Fmt.string ppf "+"
  | SLASH -> Fmt.string ppf "/"
  | EQ -> Fmt.string ppf "="
  | NE -> Fmt.string ppf "<>"
  | LT -> Fmt.string ppf "<"
  | LE -> Fmt.string ppf "<="
  | GT -> Fmt.string ppf ">"
  | GE -> Fmt.string ppf ">="
  | EOF -> Fmt.string ppf "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** Tokenize the whole input. *)
let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let rec go i =
    if i >= n then ()
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '(' -> emit LPAREN; go (i + 1)
      | ')' -> emit RPAREN; go (i + 1)
      | ',' -> emit COMMA; go (i + 1)
      | '.' -> emit DOT; go (i + 1)
      | ';' -> emit SEMI; go (i + 1)
      | '*' -> emit STAR; go (i + 1)
      | '~' -> emit TILDE; go (i + 1)
      | '+' -> emit PLUS; go (i + 1)
      | '/' -> emit SLASH; go (i + 1)
      | '=' -> emit EQ; go (i + 1)
      | '<' ->
        if i + 1 < n && src.[i + 1] = '>' then (emit NE; go (i + 2))
        else if i + 1 < n && src.[i + 1] = '=' then (emit LE; go (i + 2))
        else (emit LT; go (i + 1))
      | '>' ->
        if i + 1 < n && src.[i + 1] = '=' then (emit GE; go (i + 2))
        else (emit GT; go (i + 1))
      | '-' ->
        if i + 1 < n && src.[i + 1] = '-' then begin
          (* SQL-style line comment *)
          let eol =
            match String.index_from_opt src i '\n' with
            | Some j -> j
            | None -> n
          in
          go (eol + 1)
        end
        else if i + 1 < n && src.[i + 1] = '[' then begin
          (* -[linkname]- *)
          let close =
            match String.index_from_opt src (i + 2) ']' with
            | Some j -> j
            | None -> Err.failf "MOL lexer: unterminated -[ at offset %d" i
          in
          let name = String.sub src (i + 2) (close - i - 2) in
          if close + 1 >= n || src.[close + 1] <> '-' then
            Err.failf "MOL lexer: expected '-' after -[%s]" name;
          emit (LBRACKET_LINK (String.trim name));
          go (close + 2)
        end
        else (emit DASH; go (i + 1))
      | '@' ->
        let j = ref (i + 1) in
        while !j < n && is_digit src.[!j] do incr j done;
        if !j = i + 1 then
          Err.failf "MOL lexer: expected digits after @ at offset %d" i;
        emit (ATID (int_of_string (String.sub src (i + 1) (!j - i - 1))));
        go !j
      | '[' ->
        (* branch-leading link spec: [linkname]- *)
        let close =
          match String.index_from_opt src (i + 1) ']' with
          | Some j -> j
          | None -> Err.failf "MOL lexer: unterminated [ at offset %d" i
        in
        let name = String.sub src (i + 1) (close - i - 1) in
        if close + 1 >= n || src.[close + 1] <> '-' then
          Err.failf "MOL lexer: expected '-' after [%s]" name;
        emit (LBRACKET_LINK (String.trim name));
        go (close + 2)
      | '\'' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then Err.failf "MOL lexer: unterminated string"
          else if src.[j] = '\'' then
            if j + 1 < n && src.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              str (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf src.[j];
            str (j + 1)
          end
        in
        let next = str (i + 1) in
        emit (STRING (Buffer.contents buf));
        go next
      | c when is_digit c ->
        let j = ref i in
        while !j < n && is_digit src.[!j] do incr j done;
        if !j < n && src.[!j] = '.' then begin
          incr j;
          while !j < n && is_digit src.[!j] do incr j done;
          emit (FLOAT (float_of_string (String.sub src i (!j - i))));
          go !j
        end
        else begin
          emit (INT (int_of_string (String.sub src i (!j - i))));
          go !j
        end
      | c when is_ident_start c ->
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do incr j done;
        let word = String.sub src i (!j - i) in
        let upper = String.uppercase_ascii word in
        if List.mem upper keywords then emit (KW upper) else emit (IDENT word);
        go !j
      | c -> Err.failf "MOL lexer: unexpected character %c at offset %d" c i
  in
  go 0;
  List.rev (EOF :: !toks)
