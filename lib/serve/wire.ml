(** Wire framing — see the interface for the layout. *)

let magic = "MADQ"
let version = 2
let min_version = 1
let default_max_frame = 4 * 1024 * 1024
let hello_bytes = 8
let header_bytes = 5

type req =
  | Query of string
  | Exec of string
  | Explain of string
  | Stats
  | Health
  | Ping
  | Quit

let req_op = function
  | Query _ -> 1
  | Exec _ -> 2
  | Explain _ -> 3
  | Stats -> 4
  | Health -> 5
  | Ping -> 6
  | Quit -> 7

let req_name = function
  | Query _ -> "query"
  | Exec _ -> "exec"
  | Explain _ -> "explain"
  | Stats -> "stats"
  | Health -> "health"
  | Ping -> "ping"
  | Quit -> "quit"

let req_payload = function
  | Query s | Exec s | Explain s -> s
  | Stats | Health | Ping | Quit -> ""

(* --- v2 request metadata -------------------------------------------- *)

type meta = { want_phases : bool; span : int }

let no_meta = { want_phases = false; span = 0 }
let meta_bytes = 9

let encode_meta m =
  let b = Bytes.create meta_bytes in
  Bytes.set_uint8 b 0 (if m.want_phases then 1 else 0);
  Bytes.set_int64_le b 1 (Int64.of_int m.span);
  Bytes.unsafe_to_string b

let decode_meta payload =
  if String.length payload < meta_bytes then None
  else
    let want_phases = String.get_uint8 payload 0 land 1 = 1 in
    let span = Int64.to_int (String.get_int64_le payload 1) in
    let text =
      String.sub payload meta_bytes (String.length payload - meta_bytes)
    in
    Some ({ want_phases; span }, text)

(* --- phase breakdown codec ------------------------------------------ *)

let encode_phases phases =
  String.concat ";"
    (List.map (fun (k, us) -> Printf.sprintf "%s:%.3f" k us) phases)

let decode_phases s =
  if String.length s = 0 then []
  else
    String.split_on_char ';' s
    |> List.filter_map (fun part ->
           match String.index_opt part ':' with
           | None -> None
           | Some i ->
             let k = String.sub part 0 i in
             let v = String.sub part (i + 1) (String.length part - i - 1) in
             Option.map (fun f -> (k, f)) (float_of_string_opt v))

let encode_result_with_phases result phases =
  let p = encode_phases phases in
  let rl = String.length result in
  let b = Bytes.create (4 + rl + String.length p) in
  Bytes.set_int32_le b 0 (Int32.of_int rl);
  Bytes.blit_string result 0 b 4 rl;
  Bytes.blit_string p 0 b (4 + rl) (String.length p);
  Bytes.unsafe_to_string b

let decode_result_with_phases s =
  if String.length s < 4 then None
  else
    let rl = Int32.to_int (String.get_int32_le s 0) in
    if rl < 0 || 4 + rl > String.length s then None
    else
      Some
        ( String.sub s 4 rl,
          decode_phases (String.sub s (4 + rl) (String.length s - 4 - rl)) )

type status = Ok | Error | Busy | Pong | Bye

let status_code = function Ok -> 0 | Error -> 1 | Busy -> 2 | Pong -> 3 | Bye -> 4

let status_name = function
  | Ok -> "ok"
  | Error -> "error"
  | Busy -> "busy"
  | Pong -> "pong"
  | Bye -> "bye"

let status_of_code = function
  | 0 -> Some Ok
  | 1 -> Some Error
  | 2 -> Some Busy
  | 3 -> Some Pong
  | 4 -> Some Bye
  | _ -> None

type hello_status = H_ok | H_version | H_busy

let hello_code = function H_ok -> 0 | H_version -> 1 | H_busy -> 2

let hello_of_code = function
  | 0 -> Some H_ok
  | 1 -> Some H_version
  | 2 -> Some H_busy
  | _ -> None

(* --- blocking fd IO ------------------------------------------------- *)

type 'a incoming =
  | Msg of 'a
  | Closed
  | Truncated
  | Oversized of int
  | Bad_magic
  | Timeout

let rec write_off fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_off fd s (off + n) (len - n)
  end

let write_all fd s = write_off fd s 0 (String.length s)

(* Read exactly [n] bytes into [buf] at [off].  [started] carries
   whether an earlier part of the same message already arrived, so the
   idle-vs-stalled distinction survives the header/payload boundary. *)
let read_exact ~keep_waiting ~started fd buf off n =
  let got = ref 0 in
  let rec go () =
    if !got = n then `Done
    else
      match Unix.read fd buf (off + !got) (n - !got) with
      | 0 -> if !got = 0 && not started then `Closed else `Truncated
      | k ->
        got := !got + k;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if keep_waiting ~started:(started || !got > 0) then go () else `Timeout
  in
  go ()

(* --- handshake ------------------------------------------------------ *)

let write_client_hello fd ~version =
  let b = Bytes.make hello_bytes '\000' in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint16_le b 4 version;
  write_all fd (Bytes.unsafe_to_string b)

let write_server_hello fd ~version st =
  let b = Bytes.make hello_bytes '\000' in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint16_le b 4 version;
  Bytes.set_uint8 b 6 (hello_code st);
  write_all fd (Bytes.unsafe_to_string b)

let read_hello ~keep_waiting fd =
  let b = Bytes.create hello_bytes in
  match read_exact ~keep_waiting ~started:false fd b 0 hello_bytes with
  | `Closed -> Closed
  | `Truncated -> Truncated
  | `Timeout -> Timeout
  | `Done ->
    if not (String.equal (Bytes.sub_string b 0 4) magic) then Bad_magic
    else Msg b

let read_client_hello ~keep_waiting fd =
  match read_hello ~keep_waiting fd with
  | Msg b -> Msg (Bytes.get_uint16_le b 4)
  | Closed -> Closed
  | Truncated -> Truncated
  | Oversized n -> Oversized n
  | Bad_magic -> Bad_magic
  | Timeout -> Timeout

let read_server_hello ~keep_waiting fd =
  match read_hello ~keep_waiting fd with
  | Msg b -> begin
    match hello_of_code (Bytes.get_uint8 b 6) with
    | Some st -> Msg (Bytes.get_uint16_le b 4, st)
    | None -> Bad_magic
  end
  | Closed -> Closed
  | Truncated -> Truncated
  | Oversized n -> Oversized n
  | Bad_magic -> Bad_magic
  | Timeout -> Timeout

(* --- frames --------------------------------------------------------- *)

let frame tag payload =
  let len = String.length payload in
  let b = Bytes.create (header_bytes + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_uint8 b 4 tag;
  Bytes.blit_string payload 0 b header_bytes len;
  Bytes.unsafe_to_string b

(* On a v2 connection every statement payload carries the fixed-size
   metadata prefix (zeros when the caller supplied none), so decoding
   depends only on the negotiated version, never on sniffing. *)
let write_req ?(version = 1) ?meta fd r =
  let payload =
    match r with
    | (Query _ | Exec _ | Explain _) when version >= 2 ->
      encode_meta (Option.value meta ~default:no_meta) ^ req_payload r
    | _ -> req_payload r
  in
  write_all fd (frame (req_op r) payload)
let write_resp fd st payload = write_all fd (frame (status_code st) payload)

(* read one frame; [decode tag payload] interprets it *)
let read_frame ?(max_len = default_max_frame) ~keep_waiting ~decode fd =
  let hdr = Bytes.create header_bytes in
  match read_exact ~keep_waiting ~started:false fd hdr 0 header_bytes with
  | `Closed -> Closed
  | `Truncated -> Truncated
  | `Timeout -> Timeout
  | `Done ->
    let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
    let tag = Bytes.get_uint8 hdr 4 in
    if len < 0 || len > max_len then Oversized len
    else begin
      let payload = Bytes.create len in
      match read_exact ~keep_waiting ~started:true fd payload 0 len with
      | `Closed | `Truncated -> Truncated
      | `Timeout -> Timeout
      | `Done -> decode tag (Bytes.unsafe_to_string payload)
    end

let read_req ?max_len ?(version = 1) ~keep_waiting fd =
  read_frame ?max_len ~keep_waiting fd ~decode:(fun tag payload ->
      let stmt mk =
        if version >= 2 then
          match decode_meta payload with
          | Some (m, text) -> Msg (mk text, Some m)
          | None -> Bad_magic
        else Msg (mk payload, None)
      in
      match tag with
      | 1 -> stmt (fun s -> Query s)
      | 2 -> stmt (fun s -> Exec s)
      | 3 -> stmt (fun s -> Explain s)
      | 4 -> Msg (Stats, None)
      | 5 -> Msg (Health, None)
      | 6 -> Msg (Ping, None)
      | 7 -> Msg (Quit, None)
      | _ -> Bad_magic)

let read_resp ?max_len ~keep_waiting fd =
  read_frame ?max_len ~keep_waiting fd ~decode:(fun tag payload ->
      match status_of_code tag with
      | Some st -> Msg (st, payload)
      | None -> Bad_magic)

let req_bytes ?(version = 1) r =
  let m =
    match r with
    | (Query _ | Exec _ | Explain _) when version >= 2 -> meta_bytes
    | _ -> 0
  in
  header_bytes + m + String.length (req_payload r)
let resp_bytes payload = header_bytes + String.length payload
