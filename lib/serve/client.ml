(** The MQL network client — see the interface for the contract. *)

type t = {
  fd : Unix.file_descr;
  max_frame : int;
  timeout : float;
  version : int;  (** negotiated protocol version *)
  mutable closed : bool;
}

let version t = t.version

type connect_error =
  | Busy
  | Version_mismatch of int
  | Protocol of string

let pp_connect_error ppf = function
  | Busy -> Fmt.pf ppf "server busy (admission control refused the connection)"
  | Version_mismatch v -> Fmt.pf ppf "protocol version mismatch (server speaks %d)" v
  | Protocol msg -> Fmt.pf ppf "%s" msg

exception Remote of string

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ ->
      raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host)))

let deadline_wait timeout =
  let t0 = Unix.gettimeofday () in
  fun ~started:_ -> Unix.gettimeofday () -. t0 < timeout

let rec attempt ~auto ~version ~max_frame ~timeout ~host port =
  let addr = resolve host in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let fail e =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error e
  in
  match
    Unix.connect fd (Unix.ADDR_INET (addr, port));
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25;
    Wire.write_client_hello fd ~version;
    Wire.read_server_hello ~keep_waiting:(deadline_wait timeout) fd
  with
  | Wire.Msg (v, Wire.H_ok) ->
    (* the server echoes the negotiated version; clamp against what we
       proposed so a confused peer cannot upgrade us *)
    let negotiated = min version (max Wire.min_version v) in
    Ok { fd; max_frame; timeout; version = negotiated; closed = false }
  | Wire.Msg (v, Wire.H_version) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (* an older server refuses our proposal and names its own version:
       transparently reconnect speaking that (once, and only when the
       caller left the version to us) *)
    if auto && v >= Wire.min_version && v < version then
      attempt ~auto:false ~version:v ~max_frame ~timeout ~host port
    else Error (Version_mismatch v)
  | Wire.Msg (_, Wire.H_busy) -> fail Busy
  | Wire.Closed | Wire.Truncated ->
    fail (Protocol "connection closed during handshake")
  | Wire.Bad_magic -> fail (Protocol "not a madql server (bad magic)")
  | Wire.Oversized _ -> fail (Protocol "malformed handshake")
  | Wire.Timeout -> fail (Protocol "handshake timed out")
  | exception (Unix.Unix_error _ as e) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect ?version ?(max_frame = Wire.default_max_frame) ?(timeout = 30.0)
    ~host port =
  (* same rationale as the server: a dead peer is an EPIPE, not a
     process death *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let auto = Option.is_none version in
  let version = Option.value version ~default:Wire.version in
  attempt ~auto ~version ~max_frame ~timeout ~host port

let broken t msg =
  t.closed <- true;
  raise (Remote msg)

let request ?meta t req =
  if t.closed then raise (Remote "connection is closed");
  (try Wire.write_req ~version:t.version ?meta t.fd req
   with Unix.Unix_error (e, _, _) ->
     broken t (Printf.sprintf "send failed: %s" (Unix.error_message e)));
  match
    Wire.read_resp ~max_len:t.max_frame ~keep_waiting:(deadline_wait t.timeout)
      t.fd
  with
  | Wire.Msg (st, payload) -> (st, payload)
  | Wire.Closed | Wire.Truncated -> broken t "server closed the connection"
  | Wire.Oversized n ->
    broken t (Printf.sprintf "oversized response (%d byte payload)" n)
  | Wire.Bad_magic -> broken t "malformed response frame"
  | Wire.Timeout -> broken t "response timed out"
  | exception (Unix.Unix_error (e, _, _)) ->
    broken t (Printf.sprintf "receive failed: %s" (Unix.error_message e))

let expect_result t req =
  match request t req with
  | Wire.Ok, payload -> Ok payload
  | Wire.Error, msg -> Error msg
  | st, _ ->
    raise (Remote (Printf.sprintf "unexpected %s response" (Wire.status_name st)))

let query t stmt = expect_result t (Wire.Query stmt)
let exec t stmt = expect_result t (Wire.Exec stmt)
let explain t stmt = expect_result t (Wire.Explain stmt)

let query_traced ?(span = 0) t stmt =
  if t.version < 2 then
    (* a v1 server cannot report phases; degrade to a plain query *)
    Result.map (fun r -> (r, [])) (query t stmt)
  else
    let meta = { Wire.want_phases = true; span } in
    match request ~meta t (Wire.Query stmt) with
    | Wire.Ok, payload -> begin
      match Wire.decode_result_with_phases payload with
      | Some (r, phases) -> Ok (r, phases)
      | None -> broken t "malformed phase-annotated response"
    end
    | Wire.Error, msg -> Error msg
    | st, _ ->
      raise
        (Remote (Printf.sprintf "unexpected %s response" (Wire.status_name st)))

let expect_ok t req =
  match expect_result t req with
  | Ok payload -> payload
  | Error msg -> raise (Remote msg)

let stats t = expect_ok t Wire.Stats
let health t = expect_ok t Wire.Health
let ping t = match request t Wire.Ping with Wire.Pong, _ -> true | _ -> false

let close ?(quit = true) t =
  if not t.closed then begin
    (if quit then
       try ignore (request t Wire.Quit) with Remote _ | Unix.Unix_error _ -> ());
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
