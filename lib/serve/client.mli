(** The MQL network client: a blocking connection to a [madql serve]
    endpoint ([madql connect] and the tests drive the server through
    this).  One request in flight at a time; every wire wait is
    bounded by the connection's [timeout]. *)

type t

type connect_error =
  | Busy  (** admission control refused the connection *)
  | Version_mismatch of int  (** the server's protocol version *)
  | Protocol of string  (** handshake violation, peer vanished, … *)

val pp_connect_error : Format.formatter -> connect_error -> unit

exception Remote of string
(** Transport or framing failure after the handshake.  The connection
    is unusable once raised (the stream cannot be resynchronized). *)

val connect :
  ?version:int ->
  ?max_frame:int ->
  ?timeout:float ->
  host:string ->
  int ->
  (t, connect_error) result
(** TCP connect plus handshake.  When [version] is omitted the client
    proposes {!Wire.version} and, if the server answers with a version
    mismatch naming an {e older} version it speaks, transparently
    reconnects once at that version — so a v2 client talks to a v1
    server without ceremony.  Passing [version] explicitly disables
    the downgrade (tests pass a wrong one to provoke
    [Version_mismatch]).  [timeout] (default 30 s) bounds each
    subsequent wire wait; [max_frame] caps response payloads.  Raises
    [Unix.Unix_error] only when the TCP connect itself fails
    (connection refused, unreachable). *)

val version : t -> int
(** The negotiated protocol version of this connection. *)

val request : ?meta:Wire.meta -> t -> Wire.req -> Wire.status * string
(** One round trip.  [meta] rides v2 statement requests (ignored on a
    v1 connection).  Raises {!Remote} on transport failure. *)

val query : t -> string -> (string, string) result
(** Evaluate one MOL statement, rendered result or error message. *)

val query_traced :
  ?span:int -> t -> string -> (string * (string * float) list, string) result
(** Like {!query}, but also asks the server for its per-phase timing
    breakdown ([(phase, µs)] pairs; the phases partition the server's
    request wall-clock).  [span] is this client's trace span seq,
    recorded into the server's ring alongside the request.  On a v1
    connection the phase list is empty. *)

val exec : t -> string -> (string, string) result
(** Evaluate one MOL statement, effect summary only. *)

val explain : t -> string -> (string, string) result

val stats : t -> string
(** Prometheus exposition of the server registry. *)

val health : t -> string
(** The server's health verdict document (JSON). *)

val ping : t -> bool
(** True on Pong. *)

val close : ?quit:bool -> t -> unit
(** Close the connection; [quit] (default true) first sends Quit and
    waits briefly for the server's Bye.  Idempotent. *)
