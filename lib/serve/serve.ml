(** The MQL network service — see the interface for the contract.

    Threading layout: one accept domain multiplexes the listener with
    a 0.25 s [select] slice (so a stop request is noticed promptly);
    [workers] domains each pop one admitted connection at a time from
    a bounded queue and serve it for its lifetime.  Sockets carry a
    0.25 s [SO_RCVTIMEO], and every blocking read polls the stop flag
    and its idle/read deadline between slices ({!Wire}'s
    [keep_waiting]).

    Statement execution is serialized under [engine] (the store and
    the kernel snapshots beneath it are single-writer); everything
    slow around it — socket IO, response rendering, and above all the
    group-commit fsync wait — happens outside that lock.  That is the
    whole trick of the cross-session group commit: while the leader's
    fsync is in flight, other writers are inside the engine appending
    WAL records, and the next fsync acknowledges them all at once. *)

open Mad_store

type config = {
  host : string;
  port : int;
  workers : int;
  max_pending : int;
  idle_timeout : float;
  read_timeout : float;
  max_frame : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = Mad_kernel.Pool.parallelism ();
    max_pending = 16;
    idle_timeout = 300.0;
    read_timeout = 30.0;
    max_frame = Wire.default_max_frame;
  }

type t = {
  cfg : config;
  db : Database.t;
  durable : Mad_durable.Durable.t option;
  coord : Mad_durable.Coordinator.t option;
  obs : Mad_obs.Obs.t;
  listener : Unix.file_descr;
  port : int;
  stop : bool Atomic.t;
  engine : Mutex.t;  (** serializes statement execution on [db] *)
  qm : Mutex.t;
  qcv : Condition.t;
  q : (Unix.file_descr * string * int) Queue.t;
      (** admitted, not yet served; the int is {!Mad_obs.Monotonic}
          ticks at admission, the start of the queue-wait phase *)
  conn_seq : int Atomic.t;
  mutable accepter : unit Stdlib.Domain.t option;
  mutable domains : unit Stdlib.Domain.t list;
  mutable joined : bool;
  c_conns : Mad_obs.Metric.counter;
  c_busy : Mad_obs.Metric.counter;
  c_errors : Mad_obs.Metric.counter;
  c_bytes_in : Mad_obs.Metric.counter;
  c_bytes_out : Mad_obs.Metric.counter;
  g_active : Mad_obs.Metric.gauge;
  h_request_us : Mad_obs.Metric.histogram;
  (* request phases — one histogram point per phase; together (queue
     excepted, which is per-connection) they partition request_us *)
  h_ph_lock : Mad_obs.Metric.histogram;
  h_ph_exec : Mad_obs.Metric.histogram;
  h_ph_wal : Mad_obs.Metric.histogram;
  h_ph_fsync : Mad_obs.Metric.histogram;
  h_ph_write : Mad_obs.Metric.histogram;
  h_ph_other : Mad_obs.Metric.histogram;
  h_ph_queue : Mad_obs.Metric.histogram;
  (* engine-lock profile, labeled by statement class *)
  h_lock_wait : (string, Mad_obs.Metric.histogram) Hashtbl.t;
  h_lock_hold : (string, Mad_obs.Metric.histogram) Hashtbl.t;
  c_contended : Mad_obs.Metric.counter;
  g_lock_waiters : Mad_obs.Metric.gauge;
  g_queue_peak : Mad_obs.Metric.gauge;
      (** queue-depth high watermark as a %% of [max_pending], latched
          on admission; the timeline tick reads and resets it *)
}

let port t = t.port
let config t = t.cfg
let obs t = t.obs
let db t = t.db
let coordinator t = t.coord
let connections t = Mad_obs.Metric.value t.c_conns
let request_stop t = Atomic.set t.stop true
let stopped t = Atomic.get t.stop

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ ->
      Err.failf "serve: cannot resolve host %s" host)

let peer_name = function
  | Unix.ADDR_INET (a, p) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX s -> s

(* --- admission ------------------------------------------------------ *)

(* Over capacity: answer the handshake with the typed busy verdict and
   close.  Reading the client's hello first (one receive slice,
   best-effort) matters — closing a socket with unread inbound data
   sends RST, which could destroy the busy reply in flight. *)
let reject_busy t fd =
  Mad_obs.Metric.incr t.c_busy;
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25;
     ignore (Wire.read_client_hello ~keep_waiting:(fun ~started:_ -> false) fd);
     Wire.write_server_hello fd ~version:Wire.version Wire.H_busy
   with Unix.Unix_error _ -> ());
  close_quietly fd

(* latch the queue-depth high watermark (in % of capacity) under [qm];
   the saturation probe reads it at the next timeline tick and resets
   it, making the gauge peak-since-last-tick *)
let latch_queue_peak t depth =
  let pct =
    100.0
    *. float_of_int (min depth t.cfg.max_pending)
    /. float_of_int t.cfg.max_pending
  in
  if pct > Mad_obs.Metric.get t.g_queue_peak then
    Mad_obs.Metric.set t.g_queue_peak pct

let admit t fd peer =
  if Atomic.get t.stop then close_quietly fd
  else begin
    Mutex.lock t.qm;
    let depth = Queue.length t.q in
    let full = depth >= t.cfg.max_pending in
    if not full then begin
      Queue.add (fd, peer_name peer, Mad_obs.Monotonic.ticks ()) t.q;
      Condition.signal t.qcv
    end;
    latch_queue_peak t (depth + 1);
    Mutex.unlock t.qm;
    if full then reject_busy t fd
  end

let rec accept_ready t =
  match Unix.accept ~cloexec:true t.listener with
  | fd, peer ->
    admit t fd peer;
    if not (Atomic.get t.stop) then accept_ready t
  | exception
      Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
    (* the listener was closed under us: stop was requested *)
    Atomic.set t.stop true

let accept_loop t =
  let rec go () =
    if not (Atomic.get t.stop) then begin
      (match Unix.select [ t.listener ] [] [] 0.25 with
       | [], _, _ -> ()
       | _ -> accept_ready t
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
         Atomic.set t.stop true);
      go ()
    end
  in
  go ()

(* --- per-connection serving ----------------------------------------- *)

(* a terse acknowledgement for Exec (DML-friendly: no tree rendering
   on the wire, the client wants the effect summary) *)
let summarize = function
  | Mad_mql.Session.Dml s -> s
  | Mad_mql.Session.Inserted _ -> "inserted 1 atom"
  | Mad_mql.Session.Defined _ -> "defined"
  | Mad_mql.Session.Explained s -> s
  | Mad_mql.Session.Result _ -> "ok"

type conn_state = {
  session : Mad_mql.Session.t;
  mutable last_epoch : int;  (** db epoch as of this session's last look *)
  mutable appended : int;  (** WAL position published by the commit hook *)
  mutable acked : int;  (** highest position the coordinator confirmed *)
}

let lock_hist tbl cls =
  match Hashtbl.find_opt tbl cls with
  | Some h -> h
  | None -> Hashtbl.find tbl "other"

(* Run one statement-bearing request under the engine lock; the fsync
   wait for any commit it performed happens OUTSIDE the lock, in the
   group-commit coordinator.  Returns the response plus the request's
   engine-side phases as [(name, dur_ns, end_ticks)] — lock wait,
   execution, WAL flush (the commit hooks' share of the under-lock
   time) and fsync wait.  Lock wait and hold times also feed the
   per-statement-class contention histograms; an acquisition that
   found the mutex taken counts as contended. *)
let eval_locked t st req =
  let cls =
    Mad_mql.Fingerprint.class_of_source
      (match req with
       | Wire.Query s | Wire.Exec s | Wire.Explain s -> s
       | Wire.Stats | Wire.Health | Wire.Ping | Wire.Quit -> assert false)
  in
  let t_lock0 = Mad_obs.Monotonic.ticks () in
  if not (Mutex.try_lock t.engine) then begin
    Mad_obs.Metric.incr t.c_contended;
    Mad_obs.Metric.add_gauge t.g_lock_waiters 1.0;
    Mutex.lock t.engine;
    Mad_obs.Metric.add_gauge t.g_lock_waiters (-1.0)
  end;
  let t_lock1 = Mad_obs.Monotonic.ticks () in
  let lock_ns = t_lock1 - t_lock0 in
  Mad_obs.Metric.observe (lock_hist t.h_lock_wait cls)
    (float_of_int lock_ns /. 1e3);
  let r =
    Fun.protect
      ~finally:(fun () ->
        Mad_obs.Metric.observe (lock_hist t.h_lock_hold cls)
          (float_of_int (Mad_obs.Monotonic.ticks () - t_lock1) /. 1e3);
        Mutex.unlock t.engine)
      (fun () ->
        try
          (* another connection may have mutated the store since this
             session last looked: re-derive its catalog first *)
          let e = Database.epoch t.db in
          if st.last_epoch <> e then Mad_mql.Session.refresh st.session;
          let out =
            match req with
            | Wire.Query s -> Ok (Mad_mql.Session.run_to_string st.session s)
            | Wire.Exec s -> Ok (summarize (Mad_mql.Session.run st.session s))
            | Wire.Explain s -> Ok (Mad_mql.Session.explain st.session s)
            | Wire.Stats | Wire.Health | Wire.Ping | Wire.Quit -> assert false
          in
          st.last_epoch <- Database.epoch t.db;
          out
        with Err.Mad_error msg ->
          st.last_epoch <- Database.epoch t.db;
          Error msg)
  in
  let t_exec1 = Mad_obs.Monotonic.ticks () in
  (* the commit hooks (WAL flush + publication) ran inside the session
     under the lock; their share of the under-lock time is the "wal"
     phase, the rest is "exec" *)
  let wal_ns =
    int_of_float (Mad_mql.Session.take_last_commit_us st.session *. 1e3)
  in
  let wal_ns = min wal_ns (max 0 (t_exec1 - t_lock1)) in
  let exec_ns = max 0 (t_exec1 - t_lock1 - wal_ns) in
  (match t.coord with
   | Some c when st.appended > st.acked ->
     Mad_durable.Coordinator.wait_durable c st.appended;
     st.acked <- st.appended
   | Some _ | None -> ());
  let t_fsync1 = Mad_obs.Monotonic.ticks () in
  let phases =
    [
      ("lock", lock_ns, t_lock1);
      ("exec", exec_ns, t_exec1);
      ("wal", wal_ns, t_exec1);
      ("fsync", t_fsync1 - t_exec1, t_fsync1);
    ]
  in
  match r with
  | Ok p -> (Wire.Ok, p, phases)
  | Error m -> (Wire.Error, m, phases)

let handle_request t st req =
  match req with
  | Wire.Ping -> (Wire.Pong, "", [])
  | Wire.Quit -> (Wire.Bye, "", [])
  | Wire.Stats ->
    let registry = Mad_obs.Obs.registry t.obs in
    Mad_obs.Timeline.update_runtime ~epoch:(Database.epoch t.db) registry;
    (Wire.Ok, Mad_obs.Registry.expose registry, [])
  | Wire.Health ->
    let tl = Mad_obs.Timeline.configure () in
    ignore
      (Mad_obs.Timeline.tick ~epoch:(Database.epoch t.db) tl
         (Mad_obs.Obs.registry t.obs));
    (Wire.Ok, Mad_obs.Json.to_string (Mad_obs.Timeline.health_json tl), [])
  | Wire.Query _ | Wire.Exec _ | Wire.Explain _ -> eval_locked t st req

(* the request/response loop of one established connection; returns
   when the peer quits, times out, violates the protocol or the
   server stops.  [version] is the negotiated wire version — it
   decides the request decoding and whether phase-annotated responses
   are available. *)
let session_loop t st cid ~version fd =
  let respond req status payload =
    Mad_obs.Metric.add t.c_bytes_out (Wire.resp_bytes payload);
    Mad_obs.Metric.incr
      (Mad_obs.Obs.counter
         ~labels:[ ("op", Wire.req_name req) ]
         t.obs "serve.requests");
    if status = Wire.Error then Mad_obs.Metric.incr t.c_errors;
    Wire.write_resp fd status payload
  in
  let rec loop () =
    if Atomic.get t.stop then Wire.write_resp fd Wire.Bye ""
    else begin
      let idle_from = Unix.gettimeofday () in
      let started_at = ref None in
      let keep_waiting ~started =
        let now = Unix.gettimeofday () in
        if started then begin
          (* mid-frame: the sender must finish within read_timeout of
             its first byte, stop request or not (we drain in-flight
             requests on shutdown, not half-read ones forever) *)
          let t0 =
            match !started_at with
            | Some v -> v
            | None ->
              started_at := Some now;
              now
          in
          now -. t0 < t.cfg.read_timeout
        end
        else if Atomic.get t.stop then false
        else now -. idle_from < t.cfg.idle_timeout
      in
      match Wire.read_req ~max_len:t.cfg.max_frame ~version ~keep_waiting fd with
      | Wire.Closed -> ()
      | Wire.Truncated | Wire.Bad_magic ->
        (* the stream cannot be resynchronized past a framing
           violation: answer if we still can, then hang up *)
        Mad_obs.Metric.incr t.c_errors;
        (try Wire.write_resp fd Wire.Error "protocol error"
         with Unix.Unix_error _ -> ())
      | Wire.Oversized n ->
        Mad_obs.Metric.incr t.c_errors;
        (try
           Wire.write_resp fd Wire.Error
             (Printf.sprintf "frame of %d bytes exceeds the %d byte cap" n
                t.cfg.max_frame)
         with Unix.Unix_error _ -> ())
      | Wire.Timeout ->
        (* idle expiry or stop request: a polite goodbye either way *)
        (try Wire.write_resp fd Wire.Bye "" with Unix.Unix_error _ -> ())
      | Wire.Msg (req, meta) ->
        Mad_obs.Metric.add t.c_bytes_in (Wire.req_bytes ~version req);
        let t0 = Mad_obs.Monotonic.ticks () in
        let status, payload, eng_phases = handle_request t st req in
        let t1 = Mad_obs.Monotonic.ticks () in
        let eng name =
          match List.find_opt (fun (k, _, _) -> k = name) eng_phases with
          | Some (_, d, e) -> (d, e)
          | None -> (0, t1)
        in
        let lock_ns, lock_end = eng "lock" in
        let exec_ns, exec_end = eng "exec" in
        let wal_ns, wal_end = eng "wal" in
        let fsync_ns, fsync_end = eng "fsync" in
        (* phase-annotated response when a v2 client asked for it; the
           "write" phase cannot describe itself, so the wire breakdown
           closes with the residual up to response assembly *)
        let payload =
          match meta with
          | Some m when m.Wire.want_phases ->
            let us ns = float_of_int ns /. 1e3 in
            let accounted = lock_ns + exec_ns + wal_ns + fsync_ns in
            Wire.encode_result_with_phases payload
              [
                ("lock", us lock_ns);
                ("exec", us exec_ns);
                ("wal", us wal_ns);
                ("fsync", us fsync_ns);
                ("other", us (max 0 (t1 - t0 - accounted)));
              ]
          | _ -> payload
        in
        respond req status payload;
        let t_end = Mad_obs.Monotonic.ticks () in
        let dur_ns = t_end - t0 in
        let write_ns = t_end - t1 in
        let other_ns =
          max 0
            (dur_ns - (lock_ns + exec_ns + wal_ns + fsync_ns + write_ns))
        in
        let ring = Mad_obs.Recorder.global () in
        let seq =
          Mad_obs.Recorder.record ring Serve_request ~ticks:t_end ~dur_ns
            ~label:(Wire.req_name req) ~a:cid ~b:(Wire.status_code status)
            ()
        in
        (* the client's span seq (v2 trace propagation) links the two
           rings: journal it so a merged trace can pair the slices *)
        (match meta with
         | Some m when m.Wire.span > 0 && seq >= 0 ->
           ignore
             (Mad_obs.Recorder.record ring Serve_phase ~ticks:t0 ~dur_ns:0
                ~label:"client-span" ~a:seq ~b:m.Wire.span ())
         | _ -> ());
        let exemplar = if seq >= 0 then Some seq else None in
        Mad_obs.Metric.observe ?exemplar t.h_request_us
          (float_of_int dur_ns /. 1e3);
        (* every phase observes on every request — zeros included — so
           the phase histograms partition request_us in sum AND count *)
        let obs_phase h ns =
          Mad_obs.Metric.observe ?exemplar h (float_of_int ns /. 1e3)
        in
        obs_phase t.h_ph_lock lock_ns;
        obs_phase t.h_ph_exec exec_ns;
        obs_phase t.h_ph_wal wal_ns;
        obs_phase t.h_ph_fsync fsync_ns;
        obs_phase t.h_ph_write write_ns;
        obs_phase t.h_ph_other other_ns;
        (* ring slices only for phases that actually took time *)
        let note_phase name ns end_ticks =
          if ns > 0 && seq >= 0 then
            ignore
              (Mad_obs.Recorder.record ring Serve_phase ~ticks:end_ticks
                 ~dur_ns:ns ~label:name ~a:seq ~b:cid ())
        in
        note_phase "lock" lock_ns lock_end;
        note_phase "exec" exec_ns exec_end;
        note_phase "wal" wal_ns wal_end;
        note_phase "fsync" fsync_ns fsync_end;
        note_phase "write" write_ns t_end;
        note_phase "other" other_ns t_end;
        Mad_obs.Timeline.auto_tick ~epoch:(Database.epoch t.db)
          (Mad_obs.Obs.registry t.obs);
        if req <> Wire.Quit then loop ()
    end
  in
  loop ()

let serve_conn t fd peer =
  let cid = Atomic.fetch_and_add t.conn_seq 1 in
  Mad_obs.Metric.incr t.c_conns;
  Mad_obs.Metric.add_gauge t.g_active 1.0;
  Mad_obs.Recorder.note Serve_conn ~label:peer ~a:cid ~b:1 ();
  Fun.protect
    ~finally:(fun () ->
      Mad_obs.Metric.add_gauge t.g_active (-1.0);
      Mad_obs.Recorder.note Serve_conn ~label:peer ~a:cid ~b:0 ();
      close_quietly fd)
    (fun () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      let t0 = Unix.gettimeofday () in
      let keep_waiting ~started:_ =
        (not (Atomic.get t.stop))
        && Unix.gettimeofday () -. t0 < t.cfg.read_timeout
      in
      match Wire.read_client_hello ~keep_waiting fd with
      | Wire.Msg v when v >= Wire.min_version && v <= Wire.version ->
        (* negotiate down to the older of the two: the hello echoes
           the version this connection will actually speak *)
        let version = min v Wire.version in
        Wire.write_server_hello fd ~version Wire.H_ok;
        (* the connection's private session: its own observability
           context (metrics registry), digest, adaptive-catalog slot *)
        let session =
          Mad_mql.Session.create ~obs:(Mad_obs.Obs.create ()) t.db
        in
        ignore (Mad_mql.Session.enable_digest session);
        let st = { session; last_epoch = -1; appended = 0; acked = 0 } in
        (match t.durable with
         | Some h ->
           (* runs inside [eval_locked]'s engine section, right after
              the statement's WAL appends: publish, ack later *)
           ignore
             (Mad_mql.Session.add_on_commit session (fun () ->
                  st.appended <- Mad_durable.Durable.wal_records h))
         | None -> ());
        session_loop t st cid ~version fd
      | Wire.Msg v ->
        Mad_obs.Metric.incr t.c_errors;
        ignore v;
        Wire.write_server_hello fd ~version:Wire.version Wire.H_version
      | Wire.Closed | Wire.Truncated | Wire.Oversized _ | Wire.Bad_magic
      | Wire.Timeout ->
        ())

(* pop the next admitted connection, blocking until one arrives or the
   server stops *)
let take t =
  Mutex.lock t.qm;
  let rec go () =
    if Atomic.get t.stop then None
    else
      match Queue.take_opt t.q with
      | Some c -> Some c
      | None ->
        Condition.wait t.qcv t.qm;
        go ()
  in
  let r = go () in
  Mutex.unlock t.qm;
  r

let worker_loop t =
  let rec go () =
    match take t with
    | None -> ()
    | Some (fd, peer, admitted) ->
      (* the connection's admission wait ends here — a worker picked
         it up.  Observed separately from the request phases: it is a
         property of the connection, not of any one request. *)
      Mad_obs.Metric.observe t.h_ph_queue
        (float_of_int (Mad_obs.Monotonic.ticks () - admitted) /. 1e3);
      (* a connection failure must not take its worker down with it *)
      (try serve_conn t fd peer
       with
       | Unix.Unix_error _ -> close_quietly fd
       | e ->
         close_quietly fd;
         Mad_obs.Metric.incr t.c_errors;
         ignore (Printexc.to_string e));
      go ()
  in
  go ()

(* --- lifecycle ------------------------------------------------------ *)

let phase_hist obs phase =
  Mad_obs.Obs.histogram
    ~labels:[ ("phase", phase) ]
    ~bounds:Mad_obs.Metric.latency_bounds_us obs "serve.phase_us"

(* one histogram point per statement class, pre-registered so an idle
   server's exposition already carries the full label set (and the
   contention probe's baseline can be taught at idle) *)
let lock_hists obs name =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun cls ->
      Hashtbl.replace tbl cls
        (Mad_obs.Obs.histogram
           ~labels:[ ("class", cls) ]
           ~bounds:Mad_obs.Metric.latency_bounds_us obs name))
    Mad_mql.Fingerprint.classes;
  tbl

let start ?obs ?(config = default_config) ?durable database =
  let obs = match obs with Some o -> o | None -> Mad_obs.Obs.create () in
  (* a peer vanishing mid-write must surface as EPIPE on that one
     socket, not as a process-wide SIGPIPE death *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addr = resolve config.host in
  let listener = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.bind listener (Unix.ADDR_INET (addr, config.port));
     Unix.listen listener 64;
     Unix.set_nonblock listener
   with Unix.Unix_error (e, _, _) ->
     close_quietly listener;
     Err.failf "serve: cannot bind %s:%d: %s" config.host config.port
       (Unix.error_message e));
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let coord =
    Option.map
      (fun h -> Mad_durable.Coordinator.for_durable ~obs ~prefix:"serve.group" h)
      durable
  in
  let t =
    {
      cfg = { config with workers = max 1 config.workers };
      db = database;
      durable;
      coord;
      obs;
      listener;
      port = bound_port;
      stop = Atomic.make false;
      engine = Mutex.create ();
      qm = Mutex.create ();
      qcv = Condition.create ();
      q = Queue.create ();
      conn_seq = Atomic.make 1;
      accepter = None;
      domains = [];
      joined = false;
      c_conns = Mad_obs.Obs.counter obs "serve.connections";
      c_busy = Mad_obs.Obs.counter obs "serve.busy";
      c_errors = Mad_obs.Obs.counter obs "serve.errors";
      c_bytes_in = Mad_obs.Obs.counter obs "serve.bytes_in";
      c_bytes_out = Mad_obs.Obs.counter obs "serve.bytes_out";
      g_active = Mad_obs.Obs.gauge obs "serve.active";
      h_request_us =
        Mad_obs.Obs.histogram ~bounds:Mad_obs.Metric.latency_bounds_us obs
          "serve.request_us";
      h_ph_lock = phase_hist obs "lock";
      h_ph_exec = phase_hist obs "exec";
      h_ph_wal = phase_hist obs "wal";
      h_ph_fsync = phase_hist obs "fsync";
      h_ph_write = phase_hist obs "write";
      h_ph_other = phase_hist obs "other";
      h_ph_queue = phase_hist obs "queue";
      h_lock_wait = lock_hists obs "serve.lock.wait_us";
      h_lock_hold = lock_hists obs "serve.lock.hold_us";
      c_contended = Mad_obs.Obs.counter obs "serve.lock.contended";
      g_lock_waiters = Mad_obs.Obs.gauge obs "serve.lock.waiters";
      g_queue_peak = Mad_obs.Obs.gauge obs "serve.queue_peak_pct";
    }
  in
  t.accepter <- Some (Stdlib.Domain.spawn (fun () -> accept_loop t));
  t.domains <-
    List.init t.cfg.workers (fun _ -> Stdlib.Domain.spawn (fun () -> worker_loop t));
  t

let stop t =
  request_stop t;
  if not t.joined then begin
    t.joined <- true;
    (* closing the listener kicks the accept domain out of select *)
    close_quietly t.listener;
    Mutex.lock t.qm;
    Condition.broadcast t.qcv;
    Mutex.unlock t.qm;
    (match t.accepter with Some d -> Stdlib.Domain.join d | None -> ());
    List.iter Stdlib.Domain.join t.domains;
    t.domains <- [];
    (* admitted but never served: hang up *)
    Mutex.lock t.qm;
    Queue.iter (fun (fd, _, _) -> close_quietly fd) t.q;
    Queue.clear t.q;
    Mutex.unlock t.qm
  end
