(** The MQL wire protocol: a length-prefixed binary framing over TCP.

    Connection establishment is a fixed-size handshake:
    {v
    client → server   "MADQ" + u16 LE version + 2 reserved bytes
    server → client   "MADQ" + u16 LE version + u8 status + 1 reserved
    v}
    Handshake status: 0 = accepted, 1 = version mismatch (the server's
    version rides in the reply), 2 = busy (admission control refused
    the connection).  After a non-zero status the server closes.

    Then framed request/response, one response per request:
    {v
    request    u32 LE payload length | u8 opcode | payload
    response   u32 LE payload length | u8 status | payload
    v}
    Opcodes: 1 Query, 2 Exec, 3 Explain, 4 Stats, 5 Health, 6 Ping,
    7 Quit.  Response status: 0 Ok, 1 Error, 2 Busy, 3 Pong, 4 Bye.
    The length counts the payload only; a frame whose declared length
    exceeds the receiver's cap is rejected and the connection closed
    (there is no way to resynchronize a stream after a framing
    violation). *)

val magic : string
(** ["MADQ"]. *)

val version : int
(** The protocol version this library speaks (1). *)

val default_max_frame : int
(** Default request/response payload cap: 4 MiB. *)

val hello_bytes : int
(** Size of either handshake message (8). *)

val header_bytes : int
(** Frame overhead per message: u32 length + u8 opcode/status (5). *)

type req =
  | Query of string  (** evaluate one MOL statement, render the result *)
  | Exec of string  (** evaluate, return only a summary (DML-friendly) *)
  | Explain of string  (** the algebra plan, without executing *)
  | Stats  (** Prometheus exposition of the server registry *)
  | Health  (** the timeline health verdict as JSON *)
  | Ping
  | Quit

val req_op : req -> int
val req_name : req -> string
(** Stable lowercase tag ("query", "exec", …) for metrics labels. *)

type status = Ok | Error | Busy | Pong | Bye

val status_code : status -> int
val status_name : status -> string

type hello_status = H_ok | H_version | H_busy

(** {1 Blocking fd IO}

    Reads poll: the socket should carry a short [SO_RCVTIMEO] slice,
    and every time a read would block, [keep_waiting ~started] decides
    whether to keep going ([started] is true once any byte of the
    current message has arrived — callers use it to distinguish an
    idle connection from a stalled mid-frame sender). *)

type 'a incoming =
  | Msg of 'a
  | Closed  (** peer closed at a message boundary *)
  | Truncated  (** peer closed mid-message *)
  | Oversized of int  (** declared payload length exceeds the cap *)
  | Bad_magic
  | Timeout  (** [keep_waiting] said stop *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string (retrying partial writes and [EINTR]). *)

val write_client_hello : Unix.file_descr -> version:int -> unit
val write_server_hello : Unix.file_descr -> version:int -> hello_status -> unit

val read_client_hello :
  keep_waiting:(started:bool -> bool) -> Unix.file_descr -> int incoming
(** The client's proposed version. *)

val read_server_hello :
  keep_waiting:(started:bool -> bool) ->
  Unix.file_descr ->
  (int * hello_status) incoming
(** The server's (version, verdict). *)

val write_req : Unix.file_descr -> req -> unit
val write_resp : Unix.file_descr -> status -> string -> unit

val read_req :
  ?max_len:int ->
  keep_waiting:(started:bool -> bool) ->
  Unix.file_descr ->
  req incoming
(** An unknown opcode byte is a protocol violation and yields
    [Bad_magic] (the stream cannot be trusted past it; the server
    closes the connection). *)

val read_resp :
  ?max_len:int ->
  keep_waiting:(started:bool -> bool) ->
  Unix.file_descr ->
  (status * string) incoming

val req_bytes : req -> int
(** On-wire size of the request (header + payload). *)

val resp_bytes : string -> int
(** On-wire size of a response with this payload. *)
