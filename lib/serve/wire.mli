(** The MQL wire protocol: a length-prefixed binary framing over TCP.

    Connection establishment is a fixed-size handshake:
    {v
    client → server   "MADQ" + u16 LE version + 2 reserved bytes
    server → client   "MADQ" + u16 LE version + u8 status + 1 reserved
    v}
    Handshake status: 0 = accepted, 1 = version mismatch (the server's
    version rides in the reply), 2 = busy (admission control refused
    the connection).  After a non-zero status the server closes.

    Then framed request/response, one response per request:
    {v
    request    u32 LE payload length | u8 opcode | payload
    response   u32 LE payload length | u8 status | payload
    v}
    Opcodes: 1 Query, 2 Exec, 3 Explain, 4 Stats, 5 Health, 6 Ping,
    7 Quit.  Response status: 0 Ok, 1 Error, 2 Busy, 3 Pong, 4 Bye.
    The length counts the payload only; a frame whose declared length
    exceeds the receiver's cap is rejected and the connection closed
    (there is no way to resynchronize a stream after a framing
    violation).

    {2 Version 2}

    The server accepts any proposed version in
    [[min_version, version]] and echoes the {e negotiated} version
    (the minimum of the proposal and its own) in its hello; a proposal
    outside the range is refused with status 1.  On a negotiated-v2
    connection every statement payload (opcodes 1–3) starts with a
    fixed 9-byte metadata prefix:
    {v
    u8 flags | i64 LE client span seq | statement text
    v}
    flags bit 0 asks the server to return its phase breakdown; the
    span seq links the request to the client's own trace ring.  When
    phases were requested, an [Ok] response to the statement is
    re-framed as
    {v
    u32 LE result length | result | phase text
    v}
    where the phase text is [name:us;name:us;…] ({!encode_phases}).
    Version-1 connections are byte-for-byte unchanged. *)

val magic : string
(** ["MADQ"]. *)

val version : int
(** The newest protocol version this library speaks (2). *)

val min_version : int
(** The oldest protocol version still accepted (1). *)

val default_max_frame : int
(** Default request/response payload cap: 4 MiB. *)

val hello_bytes : int
(** Size of either handshake message (8). *)

val header_bytes : int
(** Frame overhead per message: u32 length + u8 opcode/status (5). *)

type req =
  | Query of string  (** evaluate one MOL statement, render the result *)
  | Exec of string  (** evaluate, return only a summary (DML-friendly) *)
  | Explain of string  (** the algebra plan, without executing *)
  | Stats  (** Prometheus exposition of the server registry *)
  | Health  (** the timeline health verdict as JSON *)
  | Ping
  | Quit

val req_op : req -> int
val req_name : req -> string
(** Stable lowercase tag ("query", "exec", …) for metrics labels. *)

type meta = { want_phases : bool; span : int }
(** Per-request metadata carried by v2 statement payloads:
    [want_phases] asks for the server-side phase breakdown in the
    response; [span] is the client's trace span seq (0 when the client
    is not tracing). *)

val no_meta : meta
(** [{ want_phases = false; span = 0 }] — what a v2 statement carries
    when the caller supplied none. *)

val meta_bytes : int
(** Size of the encoded metadata prefix (9). *)

val encode_phases : (string * float) list -> string
(** [name:us;name:us;…] — phase names never contain [':'] or [';']. *)

val decode_phases : string -> (string * float) list
(** Inverse of {!encode_phases}; malformed segments are dropped. *)

val encode_result_with_phases : string -> (string * float) list -> string
(** The phase-carrying [Ok] payload: u32 LE result length, the result,
    then the encoded phases. *)

val decode_result_with_phases : string -> (string * (string * float) list) option
(** [None] when the payload is too short or the embedded length is
    inconsistent. *)

type status = Ok | Error | Busy | Pong | Bye

val status_code : status -> int
val status_name : status -> string

type hello_status = H_ok | H_version | H_busy

(** {1 Blocking fd IO}

    Reads poll: the socket should carry a short [SO_RCVTIMEO] slice,
    and every time a read would block, [keep_waiting ~started] decides
    whether to keep going ([started] is true once any byte of the
    current message has arrived — callers use it to distinguish an
    idle connection from a stalled mid-frame sender). *)

type 'a incoming =
  | Msg of 'a
  | Closed  (** peer closed at a message boundary *)
  | Truncated  (** peer closed mid-message *)
  | Oversized of int  (** declared payload length exceeds the cap *)
  | Bad_magic
  | Timeout  (** [keep_waiting] said stop *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string (retrying partial writes and [EINTR]). *)

val write_client_hello : Unix.file_descr -> version:int -> unit
val write_server_hello : Unix.file_descr -> version:int -> hello_status -> unit

val read_client_hello :
  keep_waiting:(started:bool -> bool) -> Unix.file_descr -> int incoming
(** The client's proposed version. *)

val read_server_hello :
  keep_waiting:(started:bool -> bool) ->
  Unix.file_descr ->
  (int * hello_status) incoming
(** The server's (version, verdict). *)

val write_req : ?version:int -> ?meta:meta -> Unix.file_descr -> req -> unit
(** [version] (default 1) is the connection's {e negotiated} version;
    on v2, statement requests always carry the metadata prefix
    ([meta], default {!no_meta}).  [meta] is ignored on v1 and on
    non-statement requests. *)

val write_resp : Unix.file_descr -> status -> string -> unit

val read_req :
  ?max_len:int ->
  ?version:int ->
  keep_waiting:(started:bool -> bool) ->
  Unix.file_descr ->
  (req * meta option) incoming
(** [version] (default 1) is the negotiated version; the metadata is
    [Some _] exactly for statement requests on v2 connections.  An
    unknown opcode byte — or a v2 statement payload shorter than the
    metadata prefix — is a protocol violation and yields [Bad_magic]
    (the stream cannot be trusted past it; the server closes the
    connection). *)

val read_resp :
  ?max_len:int ->
  keep_waiting:(started:bool -> bool) ->
  Unix.file_descr ->
  (status * string) incoming

val req_bytes : ?version:int -> req -> int
(** On-wire size of the request (header + payload, including the v2
    metadata prefix when [version >= 2]). *)

val resp_bytes : string -> int
(** On-wire size of a response with this payload. *)
