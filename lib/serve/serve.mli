(** The MQL network service: [madql serve].

    A TCP server multiplexing MOL sessions over one database.  Each
    accepted connection is served by a worker domain for the
    connection's lifetime and owns a private {!Mad_mql.Session} with
    its own observability context, adaptive catalog slot and workload
    digest — so slow-log and digest attribution stay per-connection.
    Statement execution is serialized under one engine mutex (the
    store is not thread-safe); durability acknowledgement is not:
    writers publish the WAL position their statement reached and then
    wait on the cross-session {!Mad_durable.Coordinator}, so one
    batched fsync acknowledges every commit it covers and the fsyncs
    per commit drop below one under concurrent writers.

    Admission control: at most [workers] connections are served
    concurrently; up to [max_pending] more wait in a bounded queue;
    beyond that the server answers the handshake with a typed busy
    verdict ({!Wire.H_busy}) and closes — clients see
    [Error Busy], never a raw reset.

    A durable server must {e not} use [snapshot_every] auto-rolling
    (it truncates the WAL mid-stream, which breaks the coordinator's
    monotone positions); snapshot on shutdown instead.

    Metrics (in the server's [obs]): [serve.connections],
    [serve.busy], [serve.errors], [serve.bytes_in]/[serve.bytes_out]
    counters, [serve.active] gauge, [serve.requests{op=...}] counters,
    the [serve.request_us] latency histogram, and — durable only —
    the coordinator's [serve.group.commits] / [serve.group.fsyncs] /
    [serve.group.batch] / [serve.group.wait_us].  Every connection
    open/close and every served request also journals to the flight
    recorder ([Serve_conn] / [Serve_request] events). *)

type config = {
  host : string;  (** bind address (name or dotted quad) *)
  port : int;  (** 0 picks an ephemeral port — read it back with {!port} *)
  workers : int;  (** worker domains = max connections served at once *)
  max_pending : int;  (** accepted connections waiting for a worker *)
  idle_timeout : float;  (** seconds between requests before the server says Bye *)
  read_timeout : float;  (** seconds a started frame may stall mid-read *)
  max_frame : int;  (** request payload cap in bytes *)
}

val default_config : config
(** 127.0.0.1:0, [Mad_kernel.Pool.parallelism ()] workers (MAD_PAR
    honoured), 16 pending, 300 s idle, 30 s read,
    {!Wire.default_max_frame} cap. *)

type t

val start :
  ?obs:Mad_obs.Obs.t ->
  ?config:config ->
  ?durable:Mad_durable.Durable.t ->
  Mad_store.Database.t ->
  t
(** Bind, listen and spawn the accept and worker domains; returns once
    the server is accepting.  [obs] (default a fresh
    [Mad_obs.Obs.create ()]) holds the [serve.*] metrics and is what
    the [Stats] request exposes.  With [durable], pass
    [Mad_durable.Durable.db h] as the database: DML is journaled by
    the store's WAL hook and acknowledged through the group-commit
    coordinator.  Ignores [SIGPIPE] process-wide (socket writes to a
    vanished peer must surface as [EPIPE], not kill the server).
    Fails with a typed [Err.Mad_error] when the address cannot be
    resolved or bound. *)

val port : t -> int
(** The bound port (the ephemeral pick when [config.port] was 0). *)

val config : t -> config
val obs : t -> Mad_obs.Obs.t
val db : t -> Mad_store.Database.t

val coordinator : t -> Mad_durable.Coordinator.t option
(** The cross-session group-commit coordinator ([Some] iff durable). *)

val connections : t -> int
(** Connections accepted and admitted so far. *)

val request_stop : t -> unit
(** Ask the server to stop.  Async-signal-safe (one atomic store) —
    this is what a SIGINT/SIGTERM handler calls; follow with {!stop}
    from ordinary context. *)

val stopped : t -> bool

val stop : t -> unit
(** Stop and join: close the listener, wake the accept and worker
    domains, let each worker finish the request it is serving (the
    response is sent) and say Bye, then close never-served pending
    connections.  Idempotent; safe after {!request_stop}. *)
