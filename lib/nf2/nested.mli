(** NF² (non-first-normal-form) relations [SS86]: relation-valued
    attributes with the algebra σ π × ∪ − plus nest ν and unnest μ —
    the hierarchical baseline the molecule algebra extends. *)

open Mad_store

type nschema = (string * ndomain) list
and ndomain = Scalar of Domain.t | Nested of nschema

type nvalue = Atom of Value.t | Rel of nrel
and nrel = { schema : nschema; mutable rows : nvalue list list }

val pp_ndomain : Format.formatter -> ndomain -> unit
val pp_nschema : Format.formatter -> nschema -> unit
val pp_nvalue : Format.formatter -> nvalue -> unit
val pp_nrel : Format.formatter -> nrel -> unit
val pp_row : Format.formatter -> nvalue list -> unit

val compare_nvalue : nvalue -> nvalue -> int
(** Structural; nested relations compare as sets of rows. *)

val compare_row : nvalue list -> nvalue list -> int
val compare_rows : nvalue list list -> nvalue list list -> int
val equal_row : nvalue list -> nvalue list -> bool

val create : nschema -> nrel
val insert : nrel -> nvalue list -> unit
val cardinality : nrel -> int
val attr_index : nrel -> string -> int

val weight : nrel -> int
(** Total atomic value slots in the nested structure — the storage
    measure quantifying duplication of shared subobjects. *)

val select : (nvalue list -> bool) -> nrel -> nrel
val project : string list -> nrel -> nrel
val union : nrel -> nrel -> nrel
val diff : nrel -> nrel -> nrel
val product : nrel -> nrel -> nrel

val project_nested : nrel -> attr:string -> inner:string list -> nrel
(** Structured π: project inside a relation-valued attribute. *)

val select_nested : nrel -> attr:string -> (nvalue list -> bool) -> nrel
(** Structured σ: filter inside a relation-valued attribute, keeping
    the outer rows. *)

val nest : nrel -> attrs:string list -> as_name:string -> nrel
(** ν — group by the unlisted attributes; the listed ones fold into a
    relation-valued attribute. *)

val unnest : nrel -> attr:string -> nrel
(** μ — expand a relation-valued attribute; μ(ν(r)) = r. *)
