(** Non-first-normal-form (NF²) relations [SS86]: relations whose
    attributes may themselves be relation-valued.  This is the baseline
    the molecule algebra explicitly extends ("an extension ... to the
    non-first-normal-form algebra that supports only hierarchical
    complex objects without shared subobjects"). *)

open Mad_store

type nschema = (string * ndomain) list
and ndomain = Scalar of Domain.t | Nested of nschema

type nvalue = Atom of Value.t | Rel of nrel
and nrel = { schema : nschema; mutable rows : nvalue list list }

let rec pp_ndomain ppf = function
  | Scalar d -> Domain.pp ppf d
  | Nested s -> pp_nschema ppf s

and pp_nschema ppf s =
  Fmt.pf ppf "(%a)"
    Fmt.(
      list ~sep:(any ", ") (fun ppf (n, d) -> Fmt.pf ppf "%s:%a" n pp_ndomain d))
    s

let rec pp_nvalue ppf = function
  | Atom v -> Value.pp ppf v
  | Rel r -> pp_nrel ppf r

and pp_nrel ppf r =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any "; ") (fun ppf row -> pp_row ppf row))
    r.rows

and pp_row ppf row = Fmt.pf ppf "<%a>" Fmt.(list ~sep:(any ",") pp_nvalue) row

(* Structural comparison; nested relations compare as *sets* of rows. *)
let rec compare_nvalue a b =
  match a, b with
  | Atom x, Atom y -> Value.compare x y
  | Rel x, Rel y -> compare_rows x.rows y.rows
  | Atom _, Rel _ -> -1
  | Rel _, Atom _ -> 1

and compare_row a b = List.compare compare_nvalue a b

and compare_rows a b =
  let norm rows = List.sort_uniq compare_row rows in
  List.compare compare_row (norm a) (norm b)

let equal_row a b = compare_row a b = 0

let create schema = { schema; rows = [] }

let insert r row =
  if List.length row <> List.length r.schema then
    Err.failf "NF2 insert: row arity %d, schema arity %d" (List.length row)
      (List.length r.schema);
  if not (List.exists (equal_row row) r.rows) then r.rows <- r.rows @ [ row ]

let cardinality r = List.length r.rows

let attr_index r name =
  let rec go i = function
    | [] -> Err.failf "NF2 relation has no attribute %s" name
    | (n, _) :: rest -> if String.equal n name then i else go (i + 1) rest
  in
  go 0 r.schema

(** Total number of atomic value slots in the whole nested structure —
    the storage-size measure used to quantify duplication of shared
    subobjects. *)
let rec weight_value = function
  | Atom _ -> 1
  | Rel r -> weight r

and weight r =
  List.fold_left
    (fun acc row -> List.fold_left (fun a v -> a + weight_value v) acc row)
    0 r.rows

(* ------------------------------------------------------------------ *)
(* Algebra: σ π × ∪ − plus nest/unnest                                   *)

let select pred r =
  let out = create r.schema in
  List.iter (fun row -> if pred row then insert out row) r.rows;
  out

let project names r =
  let idxs = List.map (attr_index r) names in
  let out = create (List.map (fun i -> List.nth r.schema i) idxs) in
  List.iter
    (fun row -> insert out (List.map (fun i -> List.nth row i) idxs))
    r.rows;
  out

let union r1 r2 =
  if r1.schema <> r2.schema then Err.failf "NF2 union: schema mismatch";
  let out = create r1.schema in
  List.iter (insert out) r1.rows;
  List.iter (insert out) r2.rows;
  out

let diff r1 r2 =
  if r1.schema <> r2.schema then Err.failf "NF2 difference: schema mismatch";
  let out = create r1.schema in
  List.iter
    (fun row -> if not (List.exists (equal_row row) r2.rows) then insert out row)
    r1.rows;
  out

let product r1 r2 =
  let out = create (r1.schema @ r2.schema) in
  List.iter
    (fun a -> List.iter (fun b -> insert out (a @ b)) r2.rows)
    r1.rows;
  out

(** ν — nest: group by the attributes *not* listed; the listed
    attributes fold into a relation-valued attribute [as_name]. *)
let nest r ~attrs ~as_name =
  let idxs = List.map (attr_index r) attrs in
  let keep_idxs =
    List.filteri (fun i _ -> not (List.mem i idxs)) (List.mapi (fun i _ -> i) r.schema)
  in
  let nested_schema = List.map (fun i -> List.nth r.schema i) idxs in
  let out_schema =
    List.map (fun i -> List.nth r.schema i) keep_idxs
    @ [ (as_name, Nested nested_schema) ]
  in
  let groups = ref [] in
  List.iter
    (fun row ->
      let key = List.map (fun i -> List.nth row i) keep_idxs in
      let payload = List.map (fun i -> List.nth row i) idxs in
      match List.find_opt (fun (k, _) -> equal_row k key) !groups with
      | Some (_, acc) -> acc := payload :: !acc
      | None -> groups := (key, ref [ payload ]) :: !groups)
    r.rows;
  let out = create out_schema in
  List.iter
    (fun (key, acc) ->
      let sub = create nested_schema in
      List.iter (insert sub) (List.rev !acc);
      insert out (key @ [ Rel sub ]))
    (List.rev !groups);
  out

(** Nested projection ([SS86]'s structured π): project a
    relation-valued attribute's sub-relation onto [inner] attribute
    names, in place of the original sub-relation. *)
let project_nested r ~attr ~inner =
  let i = attr_index r attr in
  match List.nth r.schema i with
  | _, Scalar _ ->
    Err.failf "nested projection: %s is not relation-valued" attr
  | name, Nested sub_schema ->
    let keep =
      List.map
        (fun n ->
          match List.assoc_opt n sub_schema with
          | Some d -> (n, d)
          | None -> Err.failf "nested projection: no attribute %s" n)
        inner
    in
    let schema =
      List.mapi
        (fun j (n, d) -> if j = i then (name, Nested keep) else (n, d))
        r.schema
    in
    let out = create schema in
    List.iter
      (fun row ->
        let row' =
          List.mapi
            (fun j v ->
              if j <> i then v
              else
                match v with
                | Rel sub ->
                  Rel (project inner sub)
                | Atom _ -> Err.failf "nested projection: scalar at %s" attr)
            row
        in
        insert out row')
      r.rows;
    out

(** Nested selection ([SS86]'s structured σ): filter the rows of a
    relation-valued attribute's sub-relation, keeping the outer rows
    (possibly with emptied sub-relations). *)
let select_nested r ~attr pred =
  let i = attr_index r attr in
  let out = create r.schema in
  List.iter
    (fun row ->
      let row' =
        List.mapi
          (fun j v ->
            if j <> i then v
            else
              match v with
              | Rel sub -> Rel (select pred sub)
              | Atom _ -> Err.failf "nested selection: scalar at %s" attr)
          row
      in
      insert out row')
    r.rows;
  out

(** μ — unnest: expand a relation-valued attribute back into rows.
    μ(ν(r)) = r on the nested attribute (the classic partial-inverse
    law, tested as a property). *)
let unnest r ~attr =
  let i = attr_index r attr in
  let nested_schema =
    match List.nth r.schema i with
    | _, Nested s -> s
    | _, Scalar _ -> Err.failf "unnest: attribute %s is not relation-valued" attr
  in
  let out_schema =
    List.filteri (fun j _ -> j <> i) r.schema @ nested_schema
  in
  let out = create out_schema in
  List.iter
    (fun row ->
      let outer = List.filteri (fun j _ -> j <> i) row in
      match List.nth row i with
      | Rel sub -> List.iter (fun inner -> insert out (outer @ inner)) sub.rows
      | Atom _ -> Err.failf "unnest: non-relational value in %s" attr)
    r.rows;
  out
