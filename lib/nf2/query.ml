(** Queries over nested relations: navigation along relation-valued
    attribute paths with existential/universal predicates — the NF²
    counterpart of molecule restriction, used to run the paper's
    queries through the hierarchical baseline. *)

open Mad_store

(** [exists_path row schema path attr pred]: does some descendant row
    reached by following the relation-valued attributes in [path]
    carry an [attr] value satisfying [pred]? *)
let rec exists_path (schema : Nested.nschema) (row : Nested.nvalue list) path
    attr pred =
  match path with
  | [] -> begin
    (* test the attribute on this row *)
    let rec idx i = function
      | [] -> Err.failf "NF2 query: no attribute %s" attr
      | (n, _) :: rest -> if String.equal n attr then i else idx (i + 1) rest
    in
    match List.nth row (idx 0 schema) with
    | Nested.Atom v -> pred v
    | Nested.Rel _ -> Err.failf "NF2 query: %s is relation-valued" attr
  end
  | next :: rest -> begin
    let rec find i = function
      | [] -> Err.failf "NF2 query: no nested attribute %s" next
      | (n, Nested.Nested sub) :: _ when String.equal n next -> (i, sub)
      | _ :: tail -> find (i + 1) tail
    in
    let i, sub_schema = find 0 schema in
    match List.nth row i with
    | Nested.Rel sub ->
      List.exists
        (fun inner -> exists_path sub_schema inner rest attr pred)
        sub.Nested.rows
    | Nested.Atom _ -> Err.failf "NF2 query: %s is not relation-valued" next
  end

(** σ with an existential nested-path predicate: rows of [r] having
    some descendant at [path] whose [attr] satisfies [pred]. *)
let select_exists r ~path ~attr pred =
  Nested.select
    (fun row -> exists_path r.Nested.schema row path attr pred)
    r

(** The universal variant: every descendant at [path] satisfies
    [pred] (vacuously true when the path reaches no rows). *)
let rec forall_path (schema : Nested.nschema) row path attr pred =
  match path with
  | [] -> exists_path schema row [] attr pred
  | next :: rest -> begin
    let rec find i = function
      | [] -> Err.failf "NF2 query: no nested attribute %s" next
      | (n, Nested.Nested sub) :: _ when String.equal n next -> (i, sub)
      | _ :: tail -> find (i + 1) tail
    in
    let i, sub_schema = find 0 schema in
    match List.nth row i with
    | Nested.Rel sub ->
      List.for_all
        (fun inner -> forall_path sub_schema inner rest attr pred)
        sub.Nested.rows
    | Nested.Atom _ -> Err.failf "NF2 query: %s is not relation-valued" next
  end

let select_forall r ~path ~attr pred =
  Nested.select (fun row -> forall_path r.Nested.schema row path attr pred) r

(** Count the rows reached at the end of [path], summed over [r]'s
    rows (e.g. total paragraphs under all documents). *)
let count_path r ~path =
  let rec go (schema : Nested.nschema) row = function
    | [] -> 1
    | next :: rest -> begin
      let rec find i = function
        | [] -> Err.failf "NF2 query: no nested attribute %s" next
        | (n, Nested.Nested sub) :: _ when String.equal n next -> (i, sub)
        | _ :: tail -> find (i + 1) tail
      in
      let i, sub_schema = find 0 schema in
      match List.nth row i with
      | Nested.Rel sub ->
        List.fold_left
          (fun acc inner -> acc + go sub_schema inner rest)
          0 sub.Nested.rows
      | Nested.Atom _ -> Err.failf "NF2 query: %s is not relation-valued" next
    end
  in
  List.fold_left (fun acc row -> acc + go r.Nested.schema row path) 0 r.Nested.rows
