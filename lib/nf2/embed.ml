(** Embedding molecule types into NF² relations.

    A *tree-structured* molecule type embeds directly: each node
    becomes a (possibly nested) relation level.  Shared subobjects
    cannot be represented — every molecule copies the atoms it shares
    with others, and a diamond (a node with two parents) has no NF²
    shape at all.  [of_molecule_type] therefore (a) rejects diamonds
    and (b) *duplicates* shared atoms, reporting how much; that
    duplication factor is the quantitative content of the paper's
    "models ... limited to hierarchical complex objects" comparison
    (experiments FIG2 and SHARE). *)

open Mad_store
module Smap = Map.Make (String)

let rec schema_of db desc node : Nested.nschema =
  let at = Database.atom_type db node in
  let scalar =
    List.map
      (fun (a : Schema.Attr.t) -> (a.name, Nested.Scalar a.domain))
      at.attrs
  in
  let children =
    List.map
      (fun (e : Mad.Mdesc.edge) ->
        (e.to_at ^ "s", Nested.Nested (schema_of db desc e.to_at)))
      (Mad.Mdesc.out_edges desc node)
  in
  scalar @ children

(** Check the structure is a tree (each non-root node exactly one
    incoming edge). *)
let assert_tree desc =
  List.iter
    (fun node ->
      let k = List.length (Mad.Mdesc.in_edges desc node) in
      if (String.equal node (Mad.Mdesc.root desc) && k <> 0) || k > 1 then
        Err.failf
          "NF2 cannot represent node %s: network structure (shared \
           subobjects / diamonds) exceeds hierarchical models"
          node)
    (Mad.Mdesc.nodes desc)

type embedding = {
  nrel : Nested.nrel;
  atoms_embedded : int;  (** atom instances written, with duplication *)
  atoms_distinct : int;  (** distinct atoms in the molecule set *)
}

let duplication e =
  if e.atoms_distinct = 0 then 1.0
  else float_of_int e.atoms_embedded /. float_of_int e.atoms_distinct

let of_molecule_type db (mt : Mad.Molecule_type.t) =
  let desc = Mad.Molecule_type.desc mt in
  assert_tree desc;
  let embedded = ref 0 in
  let rec row_of (m : Mad.Molecule.t) node id : Nested.nvalue list =
    incr embedded;
    let a = Database.get_atom db ~atype:node id in
    let scalars =
      List.map (fun v -> Nested.Atom v) (Array.to_list a.Atom.values)
    in
    let children =
      List.map
        (fun (e : Mad.Mdesc.edge) ->
          let sub = Nested.create (schema_of db desc e.to_at) in
          Link.Set.iter
            (fun (l : Link.t) ->
              if String.equal l.lt e.link then begin
                let p, c =
                  match e.dir with
                  | `Fwd -> (l.left, l.right)
                  | `Bwd -> (l.right, l.left)
                in
                if Aid.equal p id && Aid.Set.mem c (Mad.Molecule.component m e.to_at)
                then Nested.insert sub (row_of m e.to_at c)
              end)
            m.Mad.Molecule.links;
          Nested.Rel sub)
        (Mad.Mdesc.out_edges desc node)
    in
    scalars @ children
  in
  let root = Mad.Mdesc.root desc in
  let nrel = Nested.create (schema_of db desc root) in
  List.iter
    (fun (m : Mad.Molecule.t) ->
      Nested.insert nrel (row_of m root m.Mad.Molecule.root))
    (Mad.Molecule_type.occ mt);
  let distinct =
    List.fold_left
      (fun s m -> Aid.Set.union s (Mad.Molecule.atoms m))
      Aid.Set.empty (Mad.Molecule_type.occ mt)
    |> Aid.Set.cardinal
  in
  { nrel; atoms_embedded = !embedded; atoms_distinct = distinct }
