(** Queries over nested relations: navigation along relation-valued
    attribute paths — the NF² counterpart of molecule restriction. *)

open Mad_store

val exists_path :
  Nested.nschema ->
  Nested.nvalue list ->
  string list ->
  string ->
  (Value.t -> bool) ->
  bool

val select_exists :
  Nested.nrel -> path:string list -> attr:string -> (Value.t -> bool) -> Nested.nrel

val select_forall :
  Nested.nrel -> path:string list -> attr:string -> (Value.t -> bool) -> Nested.nrel

val count_path : Nested.nrel -> path:string list -> int
