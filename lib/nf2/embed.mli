(** Embedding molecule types into NF² relations: tree structures embed
    level by level; shared subobjects are duplicated (counted);
    diamonds have no NF² shape and are rejected — the quantitative
    content of the paper's "limited to hierarchical complex objects"
    comparison. *)

open Mad_store

val schema_of : Database.t -> Mad.Mdesc.t -> string -> Nested.nschema
val assert_tree : Mad.Mdesc.t -> unit

type embedding = {
  nrel : Nested.nrel;
  atoms_embedded : int;  (** atom instances written, with duplication *)
  atoms_distinct : int;
}

val duplication : embedding -> float
val of_molecule_type : Database.t -> Mad.Molecule_type.t -> embedding
