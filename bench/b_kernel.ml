(* KERNEL — the derivation kernel against the scalar walk: CSR
   snapshot construction cost, bitset m_dom on hierarchical and
   reflexive workloads, and the domain-pool scaling of m_dom and the
   Σ restriction at MAD_PAR 1 vs 4.

   The steady-state rows time derivation with a warm snapshot (the
   common case: many derivations per mutation); the snapshot row
   prices the rebuild a mutation epoch forces. *)

module Table = Mad_store.Table
open Workloads

let par_note () =
  Format.printf
    "host exposes %d core(s); par=4 rows only beat par=1 on multicore \
     hosts (the pool caps at the recommended domain count)@."
    (Domain.recommended_domain_count ())

let run () =
  Bench_util.section "KERNEL - CSR snapshots, bitset joins, domain pool";
  par_note ();

  (* -- reflexive closure: BOM part explosion, scalar vs kernel -- *)
  Bench_util.subsection "BOM part explosion (reflexive composition link)";
  let bom = Bom_gen.build Bom_gen.default in
  let db = bom.Bom_gen.db in
  let d =
    Mad_recursive.Recursive.v db ~root_type:"part" ~link:"composition" ()
  in
  ignore (Mad_kernel.Snapshot.of_db db) (* warm *);
  let scalar_ns =
    Bench_util.time_ns "kernel/bom-mdom-scalar" (fun () ->
        Mad_recursive.Recursive.m_dom ~kernel:false db d)
  in
  let kernel_ns =
    Bench_util.time_ns "kernel/bom-mdom-kernel" (fun () ->
        Mad_recursive.Recursive.m_dom ~kernel:true db d)
  in
  let t = Table.create [ "path"; "cost"; "speedup" ] in
  Table.add_row t [ "scalar walk"; Bench_util.pp_ns scalar_ns; "1.0x" ];
  Table.add_row t
    [ "bitset kernel (warm snapshot)"; Bench_util.pp_ns kernel_ns;
      Bench_util.ratio scalar_ns kernel_ns ];
  Table.print t;

  (* -- snapshot (re)build: what one mutation epoch costs the kernel -- *)
  Bench_util.subsection "CSR snapshot build (cold, after invalidation)";
  let snap_ns =
    Bench_util.time_ns "kernel/snapshot-build" (fun () ->
        Mad_kernel.Snapshot.invalidate db;
        Mad_kernel.Snapshot.of_db db)
  in
  Format.printf "snapshot build: %s for %d atoms / %d links@."
    (Bench_util.pp_ns snap_ns)
    (Mad_store.Database.total_atoms db)
    (Mad_store.Database.total_links db);

  (* -- hierarchical m_dom: geo grid, scalar vs kernel par 1 vs 4 -- *)
  Bench_util.subsection "geo-grid m_dom (hierarchical, diamond-shaped)";
  let side = 24 in
  let g =
    Geo_grid.build ~rows:side ~cols:side
      (List.init (side * side) (Printf.sprintf "S%03d"))
  in
  let gdb = g.Geo_grid.db in
  let desc = Geo_schema.mt_state_desc gdb in
  ignore (Mad_kernel.Snapshot.of_db gdb);
  let rows =
    [
      ( "scalar walk", "kernel/grid-mdom-scalar",
        fun () -> Mad.Derive.m_dom_scalar gdb desc );
      ( "kernel par=1", "kernel/grid-mdom-par1",
        fun () -> Mad.Derive.m_dom ~kernel:true ~par:1 gdb desc );
      ( "kernel par=4", "kernel/grid-mdom-par4",
        fun () -> Mad.Derive.m_dom ~kernel:true ~par:4 gdb desc );
    ]
  in
  let t = Table.create [ "path"; "cost"; "speedup" ] in
  let base = ref nan in
  List.iter
    (fun (label, id, f) ->
      let ns = Bench_util.time_ns id f in
      if Float.is_nan !base then base := ns;
      Table.add_row t
        [ label; Bench_util.pp_ns ns; Bench_util.ratio !base ns ])
    rows;
  Table.print t;

  (* -- Σ restriction: per-molecule qualification across the pool -- *)
  Bench_util.subsection "sigma restriction over the grid occurrence";
  let mt = Mad.Molecule_algebra.define gdb ~name:"bench_mt" desc in
  let pred = Mad.Qual.(attr "state" "hectare" >=% int 400) in
  let t = Table.create [ "path"; "cost"; "speedup" ] in
  let base = ref nan in
  List.iter
    (fun (label, id, par) ->
      let ns =
        Bench_util.time_ns id (fun () ->
            Mad.Molecule_algebra.restrict ~par
              ~name:(Mad.Molecule_algebra.gen_name "b")
              gdb pred mt)
      in
      if Float.is_nan !base then base := ns;
      Table.add_row t
        [ label; Bench_util.pp_ns ns; Bench_util.ratio !base ns ])
    [
      ("sigma par=1", "kernel/sigma-par1", 1);
      ("sigma par=4", "kernel/sigma-par4", 4);
    ];
  Table.print t;
  Format.printf
    "kernel wins come from CSR locality and bitset conjunction; the \
     domain pool adds on top when cores are available.@."
