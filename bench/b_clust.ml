(* CLUST — molecule clustering on the paged store: the physical-design
   consequence of the MAD model that the PRIMA prototype line studied.
   Deriving all state molecules under a small buffer pool, with atoms
   placed segment-per-type vs in molecule order; page-fault counts and
   wall-clock across buffer sizes. *)

module Table = Mad_store.Table
open Workloads
module Pg = Prima.Paged

let run () =
  Bench_util.section "CLUST - physical molecule clustering (paged store)";

  let g = Geo_gen.build { Geo_gen.default with Geo_gen.rows = 8; cols = 8 } in
  let db = g.Geo_grid.db in
  let desc = Geo_schema.mt_state_desc db in

  let t =
    Table.create
      [ "buffer (pages)"; "placement"; "page faults"; "hit ratio"; "derive" ]
  in
  List.iter
    (fun buffer_pages ->
      List.iter
        (fun (label, placement) ->
          let s = Pg.load ~placement ~page_size:8 ~buffer_pages db in
          ignore (Pg.m_dom s desc);
          let faults = s.Pg.pool.Pg.Pool.physical_reads in
          let hits = Pg.Pool.hit_ratio s.Pg.pool in
          let ns =
            Bench_util.time_ns
              (Printf.sprintf "clust/%d/%s" buffer_pages label)
              (fun () ->
                Pg.Pool.reset s.Pg.pool;
                Pg.m_dom s desc)
          in
          Table.add_row t
            [
              string_of_int buffer_pages;
              label;
              string_of_int faults;
              Printf.sprintf "%.2f" hits;
              Bench_util.pp_ns ns;
            ])
        [ ("by type", `By_type); ("by molecule", `By_molecule desc) ])
    [ 2; 4; 8; 32 ];
  Table.print t;
  Format.printf
    "molecule clustering co-locates each molecule's atoms, so derivation \
     under a small buffer faults far less; with a large buffer both \
     placements converge to the page count.@."
