(* FIG5 — the three-stage definition of the molecule-type operations
   (operation-specific actions -> propagation -> molecule-type
   definition): per-operator cost of the whole stage pipeline, the
   share of prop in it, and a printed trace of Σ on mt_state. *)

module Table = Mad_store.Table
open Workloads
module MA = Mad.Molecule_algebra
module MT = Mad.Molecule_type

let run () =
  Bench_util.section "FIG5 - molecule-type operations through prop";

  let brazil = Geo_brazil.build () in
  let db0 = Geo_brazil.db brazil in
  let desc = Geo_brazil.mt_state_desc brazil in

  (* the printed trace: Σ[hectare>900](mt_state) stage by stage *)
  let db = Mad_store.Database.copy db0 in
  let mt = MA.define db ~name:"mt_state" desc in
  let pred = Mad.Qual.(attr "state" "hectare" >% int 900) in
  let rsv = List.filter (fun m -> MA.molecule_satisfies db mt m pred) (MT.occ mt) in
  Format.printf
    "operation-specific actions: %d of %d molecules qualify@."
    (List.length rsv) (MT.cardinality mt);
  let before = Mad_store.Database.total_atoms db in
  let mat =
    Mad.Propagate.prop db ~name:"sigma_trace" ~desc ~attr_proj:MT.Smap.empty rsv
  in
  Format.printf
    "prop: database enlarged by %d atoms, %d atom types, %d link types \
     (strategy %s)@."
    (Mad_store.Database.total_atoms db - before)
    (MT.Smap.cardinal mat.MT.node_map)
    (MT.Smap.cardinal mat.MT.link_map)
    (match mat.MT.strategy with `Shared -> "shared" | `Copied -> "copied");
  Format.printf "molecule-type definition: re-derivation exact: %b@."
    (Mad.Propagate.exact db mat.MT.mdesc mat.MT.mocc);

  (* per-operator cost *)
  let t = Table.create [ "operator"; "result molecules"; "cost" ] in
  let fresh_db () =
    let db = Mad_store.Database.copy db0 in
    let mt = MA.define db ~name:(Printf.sprintf "m%d" (Hashtbl.hash db land 0xfff)) desc in
    (db, mt)
  in
  let db, mt = fresh_db () in
  let big () = MA.restrict db pred mt in
  let touch () = MA.restrict db Mad.Qual.(attr "point" "name" =% str "pn") mt in
  let b = big () and c = touch () in
  let rows =
    [
      ("alpha (define)", (fun () -> ignore (MA.define db ~name:(Mad.Molecule_algebra.gen_name "a") desc)), MT.cardinality mt);
      ("sigma (restrict)", (fun () -> ignore (big ())), MT.cardinality b);
      ( "pi (project)",
        (fun () ->
          ignore (MA.project db [ ("state", Some [ "name" ]); ("area", None) ] mt)),
        MT.cardinality mt );
      ("omega (union)", (fun () -> ignore (MA.union db b c)), MT.cardinality (MA.union db b c));
      ("delta (difference)", (fun () -> ignore (MA.diff db b c)), MT.cardinality (MA.diff db b c));
      ("psi (intersection)", (fun () -> ignore (MA.intersect db b c)), MT.cardinality (MA.intersect db b c));
      ("x (product)", (fun () -> ignore (MA.product db b c)), MT.cardinality (MA.product db b c));
    ]
  in
  List.iter
    (fun (name, f, card) ->
      let ns = Bench_util.time_ns ("fig5/" ^ name) f in
      Table.add_row t [ name; string_of_int card; Bench_util.pp_ns ns ])
    rows;
  Table.print t;

  (* the share of prop: Σ with and without materialization *)
  let filter_only () =
    List.filter (fun m -> MA.molecule_satisfies db mt m pred) (MT.occ mt)
  in
  let filter_ns = Bench_util.time_ns "fig5/filter-only" (fun () -> ignore (filter_only ())) in
  let full_ns = Bench_util.time_ns "fig5/sigma-with-prop" (fun () -> ignore (big ())) in
  Format.printf
    "sigma = filter %s + prop/alpha %s (prop is %.0f%% of the operator)@."
    (Bench_util.pp_ns filter_ns)
    (Bench_util.pp_ns (full_ns -. filter_ns))
    (100. *. (full_ns -. filter_ns) /. full_ns)
