(* REC — recursive molecule types (ch. 5 outlook): parts explosion
   over the reflexive composition link type.  Depth sweep, and MAD
   recursion vs the relational iterated self-join. *)

open Mad_store
open Workloads
module R = Mad_recursive.Recursive

(* relational transitive closure by iterated self-joins over the
   auxiliary composition relation *)
let relational_closure ?stats map root =
  let aux = Relational.Mapping.relation map "composition" in
  let rec go frontier members =
    let joined =
      Relational.Rel_algebra.hash_join ?stats frontier aux ~lkey:"member"
        ~rkey:"part_id"
    in
    let next =
      Relational.Rel_algebra.project ?stats [ "root"; "part_id2" ] joined
      |> Relational.Rel_algebra.rename [ ("part_id2", "member") ]
    in
    let fresh = Relational.Rel_algebra.diff ?stats next members in
    if Relational.Relation.cardinality fresh = 0 then members
    else go fresh (Relational.Rel_algebra.union ?stats members fresh)
  in
  let f0 = Relational.Emulate.frontier "f0" [ (root, root) ] in
  go f0 f0

let run () =
  Bench_util.section "REC - recursive molecules (parts explosion)";

  (* depth sweep on a fixed BOM *)
  let bom =
    Bom_gen.build
      { Bom_gen.default with Bom_gen.depth = 8; width = 16; fanout = 3; share = 0.5 }
  in
  let db = bom.Bom_gen.db in
  let root = bom.Bom_gen.levels.(0).(0) in
  Format.printf "BOM: %d parts, %d composition links@."
    (Database.count_atoms db "part")
    (Database.count_links db "composition");
  let t = Table.create [ "depth bound"; "parts reached"; "derive" ] in
  List.iter
    (fun d ->
      let desc =
        R.v db ~root_type:"part" ~link:"composition"
          ?max_depth:(if d < 0 then None else Some d)
          ()
      in
      let m = R.derive_one db desc root in
      let ns =
        Bench_util.time_ns
          (Printf.sprintf "rec/depth/%d" d)
          (fun () -> R.derive_one db desc root)
      in
      Table.add_row t
        [
          (if d < 0 then "unbounded" else string_of_int d);
          string_of_int (Aid.Set.cardinal m.R.members);
          Bench_util.pp_ns ns;
        ])
    [ 1; 2; 4; 6; -1 ];
  Table.print t;

  (* MAD vs relational closure, scaling the BOM *)
  let t =
    Table.create [ "BOM"; "parts"; "MAD explosion"; "relational self-joins"; "rel/MAD" ]
  in
  List.iter
    (fun (label, p) ->
      let bom = Bom_gen.build p in
      let db = bom.Bom_gen.db in
      let root = bom.Bom_gen.levels.(0).(0) in
      let desc = R.v db ~root_type:"part" ~link:"composition" () in
      let map = Relational.Mapping.of_database db in
      (* check agreement first *)
      let m = R.derive_one db desc root in
      let rel = relational_closure map root in
      assert (Aid.Set.cardinal m.R.members = Relational.Relation.cardinality rel);
      let mad_ns =
        Bench_util.time_ns ("rec/mad/" ^ label) (fun () -> R.derive_one db desc root)
      in
      let rel_ns =
        Bench_util.time_ns ("rec/rel/" ^ label) (fun () ->
            relational_closure map root)
      in
      Table.add_row t
        [
          label;
          string_of_int (Database.count_atoms db "part");
          Bench_util.pp_ns mad_ns;
          Bench_util.pp_ns rel_ns;
          Bench_util.ratio rel_ns mad_ns;
        ])
    [
      ("d4 w8", { Bom_gen.default with Bom_gen.depth = 4; width = 8 });
      ("d6 w16", { Bom_gen.default with Bom_gen.depth = 6; width = 16; fanout = 3 });
      ("d8 w32", { Bom_gen.default with Bom_gen.depth = 8; width = 32; fanout = 3 });
    ];
  Table.print t;

  (* Schöning's full recursive molecules: flattening a VLSI design with
     each cell's pin interface attached (WITH component structure) *)
  let design = Vlsi_gen.build { Vlsi_gen.default with Vlsi_gen.levels = 4; modules_per_level = 6 } in
  let vdb = design.Vlsi_gen.db in
  let plain = R.v vdb ~root_type:"cell" ~link:"instantiates" () in
  let pins =
    Mad.Mdesc.v vdb ~nodes:[ "cell"; "pin" ]
      ~edges:[ ("cell-pin", "cell", "pin") ]
  in
  let with_pins =
    R.v vdb ~root_type:"cell" ~link:"instantiates" ~component:pins ()
  in
  let plain_ns =
    Bench_util.time_ns "rec/flatten" (fun () ->
        R.derive_one vdb plain design.Vlsi_gen.top)
  in
  let with_ns =
    Bench_util.time_ns "rec/flatten-with-pins" (fun () ->
        R.derive_one vdb with_pins design.Vlsi_gen.top)
  in
  let m = R.derive_one vdb with_pins design.Vlsi_gen.top in
  Format.printf
    "VLSI flatten: %d cells %s; WITH pin interfaces (%d sub-molecules) %s@."
    (Aid.Set.cardinal m.R.members)
    (Bench_util.pp_ns plain_ns)
    (Aid.Map.cardinal m.R.components)
    (Bench_util.pp_ns with_ns);

  (* the symmetric-view claim: where-used costs the same as explosion *)
  let sub = R.v db ~root_type:"part" ~link:"composition" () in
  let super = R.v db ~root_type:"part" ~link:"composition" ~view:R.Super () in
  let leaf = bom.Bom_gen.levels.(Array.length bom.Bom_gen.levels - 1).(0) in
  let sub_ns = Bench_util.time_ns "rec/sub" (fun () -> R.derive_one db sub root) in
  let super_ns =
    Bench_util.time_ns "rec/super" (fun () -> R.derive_one db super leaf)
  in
  Format.printf
    "symmetry: explosion from a root %s, where-used from a leaf %s (same \
     link type, both directions indexed)@."
    (Bench_util.pp_ns sub_ns) (Bench_util.pp_ns super_ns)
