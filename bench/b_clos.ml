(* CLOS — Theorems 1-3 exercised: deep operator pipelines with every
   intermediate revalidated, measuring the operator-composition
   overhead that closure makes possible in the first place. *)

module Table = Mad_store.Table
open Workloads
module MA = Mad.Molecule_algebra
module MT = Mad.Molecule_type

let run () =
  Bench_util.section "CLOS - closure under operator composition";

  let brazil = Geo_brazil.build () in
  let db0 = Geo_brazil.db brazil in
  let desc = Geo_brazil.mt_state_desc brazil in

  (* a 6-stage pipeline: α Σ Π Σ Ω Δ — validity checked at every stage *)
  let pipeline check =
    let db = Mad_store.Database.copy db0 in
    let mt = MA.define db ~name:(MA.gen_name "mt") desc in
    let s1 = MA.restrict db Mad.Qual.(attr "state" "hectare" >=% int 400) mt in
    let p1 = MA.project db [ ("state", None); ("area", None); ("edge", None) ] s1 in
    let s2 = MA.restrict db Mad.Qual.(attr "state" "hectare" >% int 900) p1 in
    let o = MA.union db s2 (MA.restrict db Mad.Qual.False p1) in
    let d = MA.diff db p1 o in
    if check then
      List.iter
        (fun mt ->
          let r = Mad.Closure.check_molecule_type db mt in
          if not (Mad.Closure.ok r) then
            failwith (Format.asprintf "%a" Mad.Closure.pp_report r))
        [ mt; s1; p1; s2; o; d ];
    d
  in
  let d = pipeline true in
  Format.printf
    "pipeline alpha-sigma-pi-sigma-omega-delta: every stage a valid \
     molecule type (Thm. 3); final cardinality %d@."
    (MT.cardinality d);

  let t = Table.create [ "variant"; "cost" ] in
  List.iter
    (fun (name, check) ->
      let ns = Bench_util.time_ns ("clos/" ^ name) (fun () -> pipeline check) in
      Table.add_row t [ name; Bench_util.pp_ns ns ])
    [ ("pipeline", false); ("pipeline + closure checks", true) ];
  Table.print t;

  (* propagation-strategy ablation: shared vs per-molecule copies *)
  let db = Mad_store.Database.copy db0 in
  let mt = MA.define db ~name:"mtp" desc in
  let rsv = MT.occ mt in
  let count_atoms strategy =
    let db' = Mad_store.Database.copy db in
    let before = Mad_store.Database.total_atoms db' in
    let _ =
      Mad.Propagate.prop ~strategy db' ~name:(MA.gen_name "p") ~desc
        ~attr_proj:MT.Smap.empty rsv
    in
    Mad_store.Database.total_atoms db' - before
  in
  let shared_atoms = count_atoms `Shared in
  let copied_atoms = count_atoms `Copied in
  let shared_ns =
    Bench_util.time_ns "clos/prop-shared" (fun () ->
        let db' = Mad_store.Database.copy db in
        Mad.Propagate.prop ~strategy:`Shared db' ~name:(MA.gen_name "p") ~desc
          ~attr_proj:MT.Smap.empty rsv)
  in
  let copied_ns =
    Bench_util.time_ns "clos/prop-copied" (fun () ->
        let db' = Mad_store.Database.copy db in
        Mad.Propagate.prop ~strategy:`Copied db' ~name:(MA.gen_name "p") ~desc
          ~attr_proj:MT.Smap.empty rsv)
  in
  let t = Table.create [ "prop strategy"; "atoms materialized"; "cost" ] in
  Table.add_row t [ "shared (Def. 9)"; string_of_int shared_atoms; Bench_util.pp_ns shared_ns ];
  Table.add_row t [ "per-molecule copies"; string_of_int copied_atoms; Bench_util.pp_ns copied_ns ];
  Table.print t;
  Format.printf
    "sharing keeps propagation linear in distinct atoms; the copying \
     fallback pays the NF2-style duplication factor.@."
