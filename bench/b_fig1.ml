(* FIG1 — Fig. 1's geographic database: construction of the MAD
   diagram + atom networks at growing scale, and the one-to-one ER->MAD
   mapping versus the ER->relational mapping. *)

open Mad_store
open Workloads
module ER = Er_model.Er

let geo rows cols =
  { Geo_gen.default with Geo_gen.rows; cols; rivers = rows; river_len = cols }

let run () =
  Bench_util.section "FIG1 - the geographic database and the ER mappings";

  (* the exact paper instance *)
  let brazil = Geo_brazil.build () in
  let bdb = Geo_brazil.db brazil in
  Format.printf "Brazil (Fig. 1 instance): %a@." Database.pp_summary bdb;

  (* ER mapping comparison (the 'no auxiliary structures' claim) *)
  let er = ER.geographic () in
  let rel = ER.to_relational er in
  let t = Table.create [ "mapping"; "relations/types"; "auxiliary"; "foreign keys" ] in
  Table.add_row t
    [
      "ER -> MAD";
      string_of_int
        (List.length er.ER.entities + List.length er.ER.relationships);
      string_of_int (ER.mad_auxiliary_count er);
      "0";
    ];
  Table.add_row t
    [
      "ER -> relational";
      string_of_int (List.length rel.ER.schema);
      string_of_int (List.length rel.ER.auxiliary);
      string_of_int (List.length rel.ER.foreign_keys);
    ];
  Table.print t;

  (* construction throughput at scale *)
  let t = Table.create [ "scale"; "atoms"; "links"; "build"; "map to relational" ] in
  List.iter
    (fun (label, p) ->
      let g = Geo_gen.build p in
      let db = g.Geo_grid.db in
      let build_ns = Bench_util.time_ns ("fig1/build/" ^ label) (fun () -> Geo_gen.build p) in
      let map_ns =
        Bench_util.time_ns ("fig1/map/" ^ label) (fun () ->
            Relational.Mapping.of_database db)
      in
      Table.add_row t
        [
          label;
          string_of_int (Database.total_atoms db);
          string_of_int (Database.total_links db);
          Bench_util.pp_ns build_ns;
          Bench_util.pp_ns map_ns;
        ])
    [
      ("brazil(5x2)", geo 5 2);
      ("geo 4x4", geo 4 4);
      ("geo 8x8", geo 8 8);
      ("geo 16x16", geo 16 16);
    ];
  Table.print t
