(* FIG3 — the concept-correspondence table of Fig. 3, regenerated from
   the live catalogs, plus the operation-level check: on a link-free
   database the MAD atom-type algebra and the relational algebra give
   identical results at comparable cost. *)

open Mad_store
open Workloads
module AA = Mad.Atom_algebra
module RA = Relational.Rel_algebra
module R = Relational.Relation

let correspondence () =
  let t = Table.create [ "relational concept"; "MAD concept" ] in
  List.iter
    (fun (a, b) -> Table.add_row t [ a; b ])
    [
      ("attribute", "attribute");
      ("attribute domain", "attribute domain");
      ("relation schema", "atom-type description");
      ("tuple set", "atom-type occurrence");
      ("tuple", "atom");
      ("relation", "atom type");
      ("database", "database");
      ("-", "link");
      ("-", "link-type description");
      ("-", "link-type occurrence");
      ("-", "link type");
      ("referential integrity (?)", "referential integrity (!)");
      ("'relation domain'", "database domain");
    ];
  Table.print t

let run () =
  Bench_util.section "FIG3 - relational vs MAD concepts and operations";
  correspondence ();

  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let map = Relational.Mapping.of_database db in
  let state_rel = Relational.Mapping.relation map "state" in

  let t =
    Table.create [ "operation"; "MAD result"; "rel result"; "MAD"; "relational" ]
  in
  let gt900 tuple =
    (* state relation columns: id, name, hectare *)
    Value.compare_sem tuple.(2) (Value.Int 900) > 0
  in
  (* σ *)
  let fresh = ref 0 in
  let next p = incr fresh; Printf.sprintf "%s%d" p !fresh in
  let mad_sigma () =
    let db' = Database.copy db in
    AA.restrict db' ~name:(next "sig")
      ~pred:Mad.Qual.(attr "state" "hectare" >% int 900)
      "state"
  in
  let sigma_card =
    Aid.Set.cardinal (AA.result_ids (mad_sigma ()))
  in
  let rel_sigma () = RA.select gt900 state_rel in
  Table.add_row t
    [
      "sigma[hectare>900](state)";
      string_of_int sigma_card;
      string_of_int (R.cardinality (rel_sigma ()));
      Bench_util.pp_ns (Bench_util.time_ns "fig3/mad/sigma" (fun () -> mad_sigma ()));
      Bench_util.pp_ns (Bench_util.time_ns "fig3/rel/sigma" (fun () -> rel_sigma ()));
    ];
  (* π *)
  let mad_pi () =
    let db' = Database.copy db in
    AA.project db' ~name:(next "pi") ~attrs:[ "name" ] "state"
  in
  let rel_pi () = RA.project [ "name" ] state_rel in
  Table.add_row t
    [
      "pi[name](state)";
      string_of_int (Aid.Set.cardinal (AA.result_ids (mad_pi ())));
      string_of_int (R.cardinality (rel_pi ()));
      Bench_util.pp_ns (Bench_util.time_ns "fig3/mad/pi" (fun () -> mad_pi ()));
      Bench_util.pp_ns (Bench_util.time_ns "fig3/rel/pi" (fun () -> rel_pi ()));
    ];
  (* × — the paper's border example *)
  let area_rel = Relational.Mapping.relation map "area" in
  let edge_rel = Relational.Mapping.relation map "edge" in
  let mad_x () =
    let db' = Database.copy db in
    AA.product db' ~name:(next "x") "area" "edge"
  in
  let rel_x () = RA.product area_rel edge_rel in
  Table.add_row t
    [
      "x(area,edge) = border";
      string_of_int (Aid.Set.cardinal (AA.result_ids (mad_x ())));
      string_of_int (R.cardinality (rel_x ()));
      Bench_util.pp_ns (Bench_util.time_ns "fig3/mad/x" (fun () -> mad_x ()));
      Bench_util.pp_ns (Bench_util.time_ns "fig3/rel/x" (fun () -> rel_x ()));
    ];
  (* ω / δ *)
  let db' = Database.copy db in
  let _ =
    AA.restrict db' ~name:"big"
      ~pred:Mad.Qual.(attr "state" "hectare" >% int 900)
      "state"
  in
  let _ =
    AA.restrict db' ~name:"small"
      ~pred:Mad.Qual.(attr "state" "hectare" <=% int 900)
      "state"
  in
  let u = AA.union db' ~name:"u_all" "big" "small" in
  let rel_big = rel_sigma () in
  let rel_small = RA.select (fun t' -> not (gt900 t')) state_rel in
  Table.add_row t
    [
      "omega(big,small)";
      string_of_int (Aid.Set.cardinal (AA.result_ids u));
      string_of_int (R.cardinality (RA.union rel_big rel_small));
      Bench_util.pp_ns
        (Bench_util.time_ns "fig3/mad/omega" (fun () ->
             let db2 = Database.copy db' in
             AA.union db2 ~name:(next "w") "big" "small"));
      Bench_util.pp_ns
        (Bench_util.time_ns "fig3/rel/omega" (fun () ->
             RA.union rel_big rel_small));
    ];
  let d = AA.diff db' ~name:"d_all" "u_all" "big" in
  Table.add_row t
    [
      "delta(all,big)";
      string_of_int (Aid.Set.cardinal (AA.result_ids d));
      string_of_int (R.cardinality (RA.diff state_rel rel_big));
      Bench_util.pp_ns
        (Bench_util.time_ns "fig3/mad/delta" (fun () ->
             let db2 = Database.copy db' in
             AA.diff db2 ~name:(next "dd") "u_all" "big"));
      Bench_util.pp_ns
        (Bench_util.time_ns "fig3/rel/delta" (fun () ->
             RA.diff state_rel rel_big));
    ];
  (* join-algorithm ablation on the transformed schema: the area-edge
     auxiliary relation joined with the edge relation *)
  let jt = Table.create [ "join algorithm"; "result"; "cost" ] in
  let aux = Relational.Mapping.relation map "area-edge" in
  List.iter
    (fun (name, f) ->
      let result = f () in
      let ns = Bench_util.time_ns ("fig3/join/" ^ name) (fun () -> f ()) in
      Table.add_row jt
        [ name; string_of_int (R.cardinality result); Bench_util.pp_ns ns ])
    [
      ( "hash",
        fun () -> RA.hash_join aux edge_rel ~lkey:"edge_id" ~rkey:"id" );
      ( "sort-merge",
        fun () -> RA.merge_join aux edge_rel ~lkey:"edge_id" ~rkey:"id" );
      ( "nested-loop",
        fun () ->
          RA.nl_join
            (fun t1 t2 -> Value.equal_sem t1.(1) t2.(0))
            aux edge_rel );
    ];
  Table.print jt;

  let copy_ns = Bench_util.time_ns "fig3/copy" (fun () -> Database.copy db) in
  Table.add_row t
    [ "(db copy baseline)"; "-"; "-"; Bench_util.pp_ns copy_ns; "-" ];
  Table.print t;
  Format.printf
    "note: each MAD measurement copies the database first (operations \
     enlarge it) and includes link-type inheritance — links are \
     first-class and have to be re-pointed; the relational side has no \
     links to inherit.@."
