(* FIG4 — the formal specification of the database (Fig. 4), printed
   from the live catalog, and the cost of verifying membership in the
   database domain (referential integrity + cardinality restrictions)
   as the occurrence grows — the machinery behind the paper's
   "referential integrity (!)" row of Fig. 3. *)

open Mad_store
open Workloads

let run () =
  Bench_util.section "FIG4 - formal specification and integrity checking";

  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  Format.printf "%s@." (Notation.database_to_string ~name:"GEO_DB" db);

  let t =
    Table.create [ "scale"; "atoms"; "links"; "violations"; "full check" ]
  in
  List.iter
    (fun (label, p) ->
      let g = Geo_gen.build p in
      let gdb = g.Geo_grid.db in
      let violations = List.length (Integrity.check gdb) in
      let ns =
        Bench_util.time_ns ("fig4/check/" ^ label) (fun () -> Integrity.check gdb)
      in
      Table.add_row t
        [
          label;
          string_of_int (Database.total_atoms gdb);
          string_of_int (Database.total_links gdb);
          string_of_int violations;
          Bench_util.pp_ns ns;
        ])
    [
      ("4x4", { Geo_gen.default with Geo_gen.rows = 4; cols = 4 });
      ("8x8", { Geo_gen.default with Geo_gen.rows = 8; cols = 8 });
      ("16x16", { Geo_gen.default with Geo_gen.rows = 16; cols = 16 });
    ];
  Table.print t;

  (* failure injection: a corrupted database is detected *)
  let g = Geo_gen.build Geo_gen.default in
  let gdb = g.Geo_grid.db in
  let victim = List.hd (Database.atoms gdb "point") in
  let tbl = Database.atom_table gdb "point" in
  Hashtbl.remove tbl.Database.atoms victim.Atom.id;
  tbl.Database.ids <- Aid.Set.remove victim.Atom.id tbl.Database.ids;
  Format.printf "after corrupting one point atom: %d violations detected@."
    (List.length (Integrity.check gdb))
