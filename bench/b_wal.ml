(* WAL — durability engine costs: append throughput with and without
   an fsync per record, group commit, snapshot rolling, and recovery
   time as a function of log length. *)

module Table = Mad_store.Table
open Mad_store
open Mad_durable

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ()) ("b_wal_" ^ name)

(* a representative record: one insert op, encoded exactly as the
   journal would *)
let sample_payload () =
  let db = Harness.seed_db () in
  let payload = ref "" in
  Database.set_journal db (Some (fun op -> payload := Logrec.encode op));
  ignore
    (Database.insert_atom db ~atype:"part"
       [ Value.String "bench part"; Value.Int 42; Value.List [ Value.Int 7 ] ]);
  Database.set_journal db None;
  !payload

let run () =
  Bench_util.section "WAL - durability engine";

  let payload = sample_payload () in
  Format.printf "record payload: %d bytes (+%d framing)@."
    (String.length payload) Wal.header_bytes;

  (* --- append throughput ------------------------------------------- *)
  let dir = tmp "append" in
  Harness.rm_rf dir;
  Unix.mkdir dir 0o755;
  let bench_writer name ~sync f =
    let path = Filename.concat dir (name ^ ".log") in
    let w = Wal.create ~sync ~truncate:true path in
    let ns = Bench_util.time_ns ("wal/" ^ name) (fun () -> f w) in
    Wal.close w;
    ns
  in
  let t = Table.create [ "variant"; "cost" ] in
  let buffered =
    bench_writer "append" ~sync:false (fun w -> Wal.append w payload)
  in
  Table.add_row t [ "append (buffered)"; Bench_util.pp_ns buffered ];
  let group =
    bench_writer "append-commit-10" ~sync:false (fun w ->
        for _ = 1 to 10 do
          Wal.append w payload
        done;
        Wal.fsync w)
  in
  Table.add_row t
    [ "10 appends + group commit"; Bench_util.pp_ns group ];
  let synced =
    bench_writer "append-fsync" ~sync:true (fun w -> Wal.append w payload)
  in
  Table.add_row t [ "append (fsync each)"; Bench_util.pp_ns synced ];
  Table.print t;
  Format.printf "fsync-per-record over buffered: %s@."
    (Bench_util.ratio synced buffered);

  (* --- recovery time vs. log length --------------------------------- *)
  Bench_util.subsection "recovery (snapshot + replay)";
  let t = Table.create [ "log records"; "recovery" ] in
  List.iter
    (fun n ->
      let rdir = tmp (Printf.sprintf "recover-%d" n) in
      Harness.rm_rf rdir;
      let h = Durable.open_or_seed ~seed:Harness.seed_db rdir in
      for i = 1 to n do
        ignore
          (Database.insert_atom (Durable.db h) ~atype:"part"
             [
               Value.String (Printf.sprintf "p%d" i);
               Value.Int i;
               Value.List [];
             ])
      done;
      Durable.close h;
      let ns =
        Bench_util.time_ns
          (Printf.sprintf "wal/recover-%d" n)
          (fun () -> Durable.close (Durable.open_dir rdir))
      in
      Table.add_row t [ string_of_int n; Bench_util.pp_ns ns ];
      Harness.rm_rf rdir)
    [ 0; 100; 1000 ];
  Table.print t;

  (* --- snapshot roll ------------------------------------------------ *)
  let sdir = tmp "snapshot" in
  Harness.rm_rf sdir;
  let h = Durable.open_or_seed ~seed:Harness.seed_db sdir in
  let ns =
    Bench_util.time_ns "wal/snapshot" (fun () ->
        ignore
          (Database.insert_atom (Durable.db h) ~atype:"part"
             [ Value.String "s"; Value.Int 1; Value.List [] ]);
        Durable.snapshot h)
  in
  Format.printf "snapshot roll (write + fsync + rename + truncate): %s@."
    (Bench_util.pp_ns ns);
  Durable.close h;
  Harness.rm_rf sdir;
  Harness.rm_rf dir
