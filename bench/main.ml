(* The experiment harness: one section per experiment id of DESIGN.md.
   Each section prints the rows/series the paper's artifact shows and
   measures the associated costs with Bechamel.

   Run everything:        dune exec bench/main.exe
   Run a subset:          dune exec bench/main.exe -- fig2 q2 share
   Faster, noisier runs:  BENCH_QUOTA_MS=50 dune exec bench/main.exe *)

let experiments =
  [
    ("fig1", B_fig1.run);
    ("fig2", B_fig2.run);
    ("fig3", B_fig3.run);
    ("fig4", B_fig4.run);
    ("fig5", B_fig5.run);
    ("q1", B_q1.run);
    ("q2", B_q2.run);
    ("rec", B_rec.run);
    ("share", B_share.run);
    ("clos", B_clos.run);
    ("kernel", B_kernel.run);
    ("clust", B_clust.run);
    ("wal", B_wal.run);
    ("obs", B_obs.run);
    ("serve", B_serve.run);
    ("mixed", B_mixed.run);
  ]

let () =
  let selected =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  Format.printf
    "MAD model / molecule algebra - experiment harness (quota %.0f ms per \
     measurement)@."
    (Bench_util.quota *. 1000.);
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
        Format.eprintf "unknown experiment %s (known: %s)@." name
          (String.concat ", " (List.map fst experiments)))
    selected;
  Bench_util.write_results "BENCH_RESULTS.json";
  Format.printf "@.done. (results in BENCH_RESULTS.json)@."
