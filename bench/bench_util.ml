(* Shared measurement helpers for the experiment harness: a thin
   Bechamel wrapper returning ns/run estimates, and formatting.

   Every measurement is also emitted as a "bench" event on the default
   observability context, so MAD_OBS=json (or json:FILE) turns any
   bench run into a machine-readable JSON-lines log. *)

open Bechamel
open Toolkit

let obs = Mad_obs.Obs.default ()

let quota =
  match Sys.getenv_opt "BENCH_QUOTA_MS" with
  | None -> 0.25
  | Some s -> begin
    match float_of_string_opt (String.trim s) with
    | Some ms when Float.is_finite ms && ms > 0.0 -> ms /. 1000.0
    | Some _ | None ->
      Format.eprintf
        "bench: invalid BENCH_QUOTA_MS=%S (expected a positive number of \
         milliseconds)@."
        s;
      exit 2
  end

(** Measure [f] with Bechamel's OLS estimator; returns ns per run.
    Failed estimations warn on stderr instead of silently returning
    [nan] downstream. *)
let time_ns name f =
  let test = Test.make ~name (Staged.stage f) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false
      ~compaction:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let est =
    match Hashtbl.find_opt results name with
    | None -> nan
    | Some ols_result -> begin
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> est
      | Some [] | None -> nan
    end
  in
  if Float.is_nan est then
    Format.eprintf
      "bench: %s produced no estimate (quota %.0f ms too small?)@." name
      (quota *. 1000.0)
  else
    Mad_obs.Obs.event obs "bench"
      [
        ("name", Mad_obs.Span.Str name);
        ("ns_per_run", Mad_obs.Span.Float est);
        ("quota_ms", Mad_obs.Span.Float (quota *. 1000.0));
      ];
  est

let pp_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let ratio a b = if b = 0.0 || Float.is_nan b then "n/a" else Printf.sprintf "%.1fx" (a /. b)

let section title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

let subsection title = Format.printf "@.-- %s@." title
