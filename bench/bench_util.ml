(* Shared measurement helpers for the experiment harness: a thin
   Bechamel wrapper returning ns/run estimates, and formatting.

   Every measurement is also emitted as a "bench" event on the default
   observability context, so MAD_OBS=json (or json:FILE) turns any
   bench run into a machine-readable JSON-lines log. *)

open Bechamel
open Toolkit

let obs = Mad_obs.Obs.default ()

let quota =
  match Sys.getenv_opt "BENCH_QUOTA_MS" with
  | None -> 0.25
  | Some s -> begin
    match float_of_string_opt (String.trim s) with
    | Some ms when Float.is_finite ms && ms > 0.0 -> ms /. 1000.0
    | Some _ | None ->
      Format.eprintf
        "bench: invalid BENCH_QUOTA_MS=%S (expected a positive number of \
         milliseconds)@."
        s;
      exit 2
  end

(* Per-measurement latency distributions and the machine-readable
   results file.  Each [time_ns] call, besides the OLS estimate, runs a
   short sampling loop recording individual run durations into a
   [bench.latency_us{bench=<name>}] histogram; the collected rows are
   written out as BENCH_RESULTS.json by the harness on exit. *)
let registry = Mad_obs.Registry.create ()

type result = {
  r_name : string;
  r_iterations : int;  (** sampled runs behind the histogram *)
  r_ns_per_run : float;  (** Bechamel OLS estimate *)
  r_mean_us : float;
  r_p50_us : float;
  r_p95_us : float;
  r_minor_words_per_run : float option;
      (** minor-heap words allocated per run; [None] when the
          experiment did not measure allocation (JSON [null]) *)
  r_promoted_words_per_run : float option;
      (** words promoted to the major heap; [None] when unmeasured *)
}

let recorded : result list ref = ref []

(* sample individual run durations into the measurement's histogram:
   bounded by the same quota as the estimator and a hard run cap, so a
   slow experiment cannot double the harness's wall-clock *)
let max_sample_runs = 200

let sample_latency name f =
  let h =
    Mad_obs.Registry.histogram
      ~labels:[ ("bench", name) ]
      ~bounds:Mad_obs.Metric.latency_bounds_us registry "bench.latency_us"
  in
  let clock = !Mad_obs.Span.clock in
  let deadline = clock () +. quota in
  let runs = ref 0 in
  (* GC counters around the sampling loop attribute allocation (minor
     and promoted words) to the measurement, amortized per run.  Minor
     words come from [Gc.minor_words] (reads the allocation pointer, so
     it is exact even when the window spans no minor collection);
     promoted words only advance at minor collections, where
     [quick_stat] is already accurate. *)
  let m0 = Gc.minor_words () and g0 = Gc.quick_stat () in
  while !runs < max_sample_runs && (!runs = 0 || clock () < deadline) do
    let t0 = clock () in
    ignore (Sys.opaque_identity (f ()));
    Mad_obs.Metric.observe h ((clock () -. t0) *. 1e6);
    incr runs
  done;
  let m1 = Gc.minor_words () and g1 = Gc.quick_stat () in
  let per tot0 tot1 = Float.max 0.0 (tot1 -. tot0) /. float_of_int !runs in
  (h, per m0 m1, per g0.Gc.promoted_words g1.Gc.promoted_words)

(** Measure [f] with Bechamel's OLS estimator; returns ns per run.
    Failed estimations warn on stderr instead of silently returning
    [nan] downstream. *)
let time_ns name f =
  let test = Test.make ~name (Staged.stage f) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false
      ~compaction:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let est =
    match Hashtbl.find_opt results name with
    | None -> nan
    | Some ols_result -> begin
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> est
      | Some [] | None -> nan
    end
  in
  let h, minor_w, promoted_w = sample_latency name f in
  if Float.is_nan est then
    Format.eprintf
      "bench: %s produced no estimate (quota %.0f ms too small?)@." name
      (quota *. 1000.0)
  else
    Mad_obs.Obs.event obs "bench"
      [
        ("name", Mad_obs.Span.Str name);
        ("ns_per_run", Mad_obs.Span.Float est);
        ("quota_ms", Mad_obs.Span.Float (quota *. 1000.0));
        ("minor_words_per_run", Mad_obs.Span.Float minor_w);
        ("promoted_words_per_run", Mad_obs.Span.Float promoted_w);
      ];
  recorded :=
    {
      r_name = name;
      r_iterations = Mad_obs.Metric.count h;
      r_ns_per_run = est;
      r_mean_us = Mad_obs.Metric.mean h;
      r_p50_us = Option.value ~default:0.0 (Mad_obs.Metric.quantile h 0.5);
      r_p95_us = Option.value ~default:0.0 (Mad_obs.Metric.quantile h 0.95);
      r_minor_words_per_run = Some minor_w;
      r_promoted_words_per_run = Some promoted_w;
    }
    :: !recorded;
  est

(** Record a row measured outside {!time_ns} — for experiments where
    the quantity is a property of many concurrent actors (the serve
    bench's client-observed commit latencies), not of one repeated
    thunk.  The row rides [write_results] like any other.  GC totals
    are per-domain in OCaml 5, so a multi-domain experiment must sum
    its workers' own deltas and pass them here; when omitted the JSON
    row says [null] rather than a misleading zero. *)
let record_external ~name ~iterations ~ns_per_run ~mean_us ~p50_us ~p95_us
    ?minor_words_per_run ?promoted_words_per_run () =
  Mad_obs.Obs.event obs "bench"
    ([
       ("name", Mad_obs.Span.Str name);
       ("ns_per_run", Mad_obs.Span.Float ns_per_run);
       ("external", Mad_obs.Span.Bool true);
     ]
    @ (match minor_words_per_run with
      | Some w -> [ ("minor_words_per_run", Mad_obs.Span.Float w) ]
      | None -> [])
    @
    match promoted_words_per_run with
    | Some w -> [ ("promoted_words_per_run", Mad_obs.Span.Float w) ]
    | None -> []);
  recorded :=
    {
      r_name = name;
      r_iterations = iterations;
      r_ns_per_run = ns_per_run;
      r_mean_us = mean_us;
      r_p50_us = p50_us;
      r_p95_us = p95_us;
      r_minor_words_per_run = minor_words_per_run;
      r_promoted_words_per_run = promoted_words_per_run;
    }
    :: !recorded

(* NaN is not valid JSON; the OLS estimate can be NaN when the quota
   was too small, the histogram stats cannot (>= 1 sampled run) *)
let json_num f = Mad_obs.Json.Num (if Float.is_nan f then 0.0 else f)

(* unmeasured stays distinguishable from "measured zero" downstream *)
let json_opt = function None -> Mad_obs.Json.Null | Some f -> json_num f

let result_json r =
  Mad_obs.Json.Obj
    [
      ("name", Mad_obs.Json.Str r.r_name);
      ("iterations", json_num (float_of_int r.r_iterations));
      ("ns_per_run", json_num r.r_ns_per_run);
      ("mean_us", json_num r.r_mean_us);
      ("p50_us", json_num r.r_p50_us);
      ("p95_us", json_num r.r_p95_us);
      ("minor_words_per_run", json_opt r.r_minor_words_per_run);
      ("promoted_words_per_run", json_opt r.r_promoted_words_per_run);
    ]

(** Write every measurement recorded so far (name, sampled iteration
    count, OLS ns/run, and the histogram's mean/p50/p95 in µs) as a
    JSON document — the harness calls this once, at the end. *)
let write_results path =
  let doc =
    Mad_obs.Json.Obj
      [
        ("quota_ms", json_num (quota *. 1000.0));
        ( "benches",
          Mad_obs.Json.List (List.rev_map result_json !recorded) );
      ]
  in
  let oc = open_out path in
  output_string oc (Mad_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc

let pp_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let ratio a b = if b = 0.0 || Float.is_nan b then "n/a" else Printf.sprintf "%.1fx" (a /. b)

let section title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

let subsection title = Format.printf "@.-- %s@." title
