(* serve — the network service: cross-session group commit under
   concurrent writers.  N client domains over loopback each run K
   INSERT statements through [madql serve]'s wire protocol (Exec);
   every commit is acknowledged by the group-commit coordinator, so
   with enough writers one WAL fsync covers several commits.

   Reported per writer count: commits/sec end to end, the
   client-observed commit latency distribution (mean/p50/p95), and
   fsyncs per commit — the amortization the coordinator exists for.
   The 8-writer row must batch (fsyncs/commit < 1); the harness prints
   "serve-group-commit-ok" for CI to grep. *)

module Table = Mad_store.Table
open Mad_serve

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ()) ("b_serve_" ^ name)

let brazil () = Workloads.Geo_brazil.db (Workloads.Geo_brazil.build ())

let quantile sorted q =
  if Array.length sorted = 0 then 0.0
  else
    sorted.(min (Array.length sorted - 1)
              (int_of_float (q *. float_of_int (Array.length sorted))))

(* one round: [writers] domains, each its own connection, each [per]
   inserts; returns (wall seconds, all client-side commit latencies,
   total minor words, total promoted words).  GC counters are
   domain-local in OCaml 5, so each writer samples its own deltas and
   the round sums them — reading [Gc.minor_words] from the spawning
   domain would miss every word the writers allocated. *)
let round srv ~tag ~writers ~per =
  let clock = !Mad_obs.Span.clock in
  let t0 = clock () in
  let doms =
    List.init writers (fun w ->
        Stdlib.Domain.spawn (fun () ->
            let m0 = Gc.minor_words () and g0 = Gc.quick_stat () in
            let lats =
              match Client.connect ~host:"127.0.0.1" (Serve.port srv) with
              | Error e ->
                Format.eprintf "bench: connect failed: %a@."
                  Client.pp_connect_error e;
                [||]
              | Ok c ->
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    Array.init per (fun j ->
                        let s0 = clock () in
                        (match
                           Client.exec c
                             (Printf.sprintf
                                "INSERT INTO state VALUES ('%s_w%d_%d', %d);"
                                tag w j (200 + w))
                         with
                        | Ok _ -> ()
                        | Error msg -> Format.eprintf "bench: %s@." msg);
                        clock () -. s0))
            in
            let m1 = Gc.minor_words () and g1 = Gc.quick_stat () in
            ( lats,
              Float.max 0.0 (m1 -. m0),
              Float.max 0.0 (g1.Gc.promoted_words -. g0.Gc.promoted_words) )))
  in
  let joined = List.map Stdlib.Domain.join doms in
  let lats =
    List.concat_map (fun (ls, _, _) -> Array.to_list ls) joined
  in
  let minor = List.fold_left (fun acc (_, m, _) -> acc +. m) 0.0 joined in
  let promoted = List.fold_left (fun acc (_, _, p) -> acc +. p) 0.0 joined in
  (clock () -. t0, lats, minor, promoted)

let run () =
  Bench_util.section "serve: network service - cross-session group commit";
  let dir = tmp "store" in
  Mad_durable.Harness.rm_rf dir;
  let h = Mad_durable.Durable.open_dir ~seed:(brazil ()) dir in
  let config = { Serve.default_config with Serve.workers = 8; max_pending = 32 } in
  let srv = Serve.start ~config ~durable:h (Mad_durable.Durable.db h) in
  let coord = Option.get (Serve.coordinator srv) in
  let per = 40 in
  let t =
    Table.create
      [ "writers"; "commits/s"; "mean"; "p95"; "fsyncs/commit" ]
  in
  let batched_at_8 = ref nan in
  List.iter
    (fun writers ->
      let c0 = Mad_durable.Coordinator.commits coord
      and f0 = Mad_durable.Coordinator.fsyncs coord in
      let wall, lats, minor, promoted =
        round srv ~tag:(string_of_int writers) ~writers ~per
      in
      let commits = Mad_durable.Coordinator.commits coord - c0 in
      let fsyncs = Mad_durable.Coordinator.fsyncs coord - f0 in
      let sorted = Array.of_list (List.map (fun s -> s *. 1e6) lats) in
      Array.sort compare sorted;
      let n = float_of_int (writers * per) in
      let per_commit = if commits = 0 then nan else float_of_int fsyncs /. float_of_int commits in
      if writers >= 8 then batched_at_8 := per_commit;
      let mean_us = Array.fold_left ( +. ) 0.0 sorted /. float_of_int (max 1 (Array.length sorted)) in
      let p50 = quantile sorted 0.5 and p95 = quantile sorted 0.95 in
      Table.add_row t
        [
          string_of_int writers;
          Printf.sprintf "%.0f" (n /. wall);
          Printf.sprintf "%.0f us" mean_us;
          Printf.sprintf "%.0f us" p95;
          (if Float.is_nan per_commit then "n/a"
           else Printf.sprintf "%.2f" per_commit);
        ];
      Bench_util.record_external
        ~name:(Printf.sprintf "serve/commit-%dw" writers)
        ~iterations:(writers * per)
        ~ns_per_run:(wall /. n *. 1e9)
        ~mean_us ~p50_us:p50 ~p95_us:p95 ~minor_words_per_run:(minor /. n)
        ~promoted_words_per_run:(promoted /. n) ())
    [ 1; 2; 4; 8 ];
  Table.print t;
  Serve.stop srv;
  Mad_durable.Durable.close h;
  Mad_durable.Harness.rm_rf dir;
  (* the acceptance gate: concurrent writers must share fsyncs *)
  if !batched_at_8 < 1.0 then
    Format.printf "serve-group-commit-ok (%.2f fsyncs/commit at 8 writers)@."
      !batched_at_8
  else
    Format.printf
      "serve-group-commit-FAILED (%.2f fsyncs/commit at 8 writers)@."
      !batched_at_8
