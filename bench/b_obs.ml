(* OBS — the flight recorder's price and product.

   The recorder claims "always on at near-zero cost": every span
   open/close, kernel run and WAL event writes one preallocated ring
   slot behind an atomic cursor.  This experiment prices that claim on
   the default BOM workload two ways — the kernel m_dom path (ring
   writes from the derivation kernel) and the full MOL statement path
   (span journaling per operator) — by toggling the ring and comparing
   best-of-k times.  CI fails the smoke if overhead exceeds 5%.

   The product side: the run's ring is dumped as Chrome trace-event
   JSON (obs-trace.json) and re-parsed with Obs.Json.of_string, so the
   artifact CI uploads is known to be loadable. *)

module Recorder = Mad_obs.Recorder
module Json = Mad_obs.Json
module Table = Mad_store.Table
open Workloads

(* robust comparison for a threshold check.  Three defenses against a
   noisy shared machine: each sample times a batch of runs (so the
   ~1 µs resolution of [Unix.gettimeofday] is noise on a ~1 ms
   interval, not a ~15 µs one); ring-on and ring-off batches are timed
   back-to-back as a pair, in alternating order, so load drift over
   the window cancels inside each pair; and the overhead estimate is
   the {e median} of the paired differences, immune to the outlier
   pairs a GC slice or scheduler preemption lands on.

   [set] toggles the feature being priced (default: the recorder
   ring); the same harness prices the workload digest below. *)
let overhead_pct ?(set = Recorder.set_enabled) ~runs ~batch f =
  let time_batch () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batch do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int batch
  in
  ignore (f ());
  let diffs = Array.make runs 0.0 and offs = Array.make runs 0.0 in
  for i = 0 to runs - 1 do
    let on_first = i land 1 = 0 in
    set on_first;
    let x = time_batch () in
    set (not on_first);
    let y = time_batch () in
    let on, off = if on_first then (x, y) else (y, x) in
    diffs.(i) <- on -. off;
    offs.(i) <- off
  done;
  set true;
  let median a =
    let s = Array.copy a in
    Array.sort compare s;
    s.(Array.length s / 2)
  in
  let off = median offs and diff = Float.max 0.0 (median diffs) in
  (diff /. off *. 100.0, off +. diff, off)

let run () =
  Bench_util.section "OBS - flight recorder: overhead and trace export";

  (* -- the ring's price on the PR 4 kernel baseline -- *)
  Bench_util.subsection "recorder overhead (default BOM workload)";
  let bom = Bom_gen.build Bom_gen.default in
  let db = bom.Bom_gen.db in
  let d =
    Mad_recursive.Recursive.v db ~root_type:"part" ~link:"composition" ()
  in
  ignore (Mad_kernel.Snapshot.of_db db) (* warm *);
  let kernel_work () = Mad_recursive.Recursive.m_dom ~kernel:true db d in
  (* the statement path journals a span per operator: the worst
     realistic span-to-work ratio *)
  let obs = Mad_obs.Obs.create ~tracing:false () in
  let session = Mad_mql.Session.create ~obs db in
  let stmt =
    "SELECT ALL FROM part RECURSIVE BY composition DEPTH 2 WHERE part.pname \
     = 'P0_0';"
  in
  let statement_work () = Mad_mql.Session.run session stmt in

  ignore (Bench_util.time_ns "obs/bom-mdom-recorder-on" kernel_work);
  Recorder.set_enabled false;
  ignore (Bench_util.time_ns "obs/bom-mdom-recorder-off" kernel_work);
  Recorder.set_enabled true;

  let runs = 60 and batch = 64 in
  (* confirm-on-failure: a genuine regression exceeds the threshold in
     every trial; a load spike or an unlucky code-layout-hot window
     does not, so on failure the measurement is retried (at most
     twice) and the reported estimate is the best trial *)
  let measure ?set ?(threshold = 5.0) f =
    let rec confirm best tries =
      let (pct, _, _) as trial = overhead_pct ?set ~runs ~batch f in
      let best =
        match best with
        | Some (bp, _, _) when bp <= pct -> Option.get best
        | _ -> trial
      in
      let bp, _, _ = best in
      if bp < threshold || tries <= 1 then best
      else confirm (Some best) (tries - 1)
    in
    confirm None 3
  in
  let k_pct, k_on, k_off = measure kernel_work in
  let s_pct, s_on, s_off = measure statement_work in
  let t = Table.create [ "path"; "ring on"; "ring off"; "overhead" ] in
  Table.add_row t
    [ "kernel m_dom"; Bench_util.pp_ns k_on; Bench_util.pp_ns k_off;
      Printf.sprintf "%.2f%%" k_pct ];
  Table.add_row t
    [ "MOL statement"; Bench_util.pp_ns s_on; Bench_util.pp_ns s_off;
      Printf.sprintf "%.2f%%" s_pct ];
  Table.print t;
  let worst = Float.max k_pct s_pct in
  Format.printf "recorder overhead: %.2f%% worst-case (threshold 5%%): %s@."
    worst
    (if worst < 5.0 then "recorder-overhead-ok" else "recorder-overhead-exceeded");

  (* -- the workload digest's price on the Fig. 1 query path (b_q1) -- *)
  Bench_util.subsection "digest overhead (brazil b_q1 statement)";
  let brazil = Geo_brazil.db (Geo_brazil.build ()) in
  (* the full wiring: Adaptive's plan hasher (memoized after the first
     call) feeds the digest, exactly as under madql *)
  Prima.Adaptive.install ();
  let q1 = "SELECT ALL FROM mt_state(state-area-edge-point);" in
  let mk () =
    Mad_mql.Session.create ~obs:(Mad_obs.Obs.create ~tracing:false ()) brazil
  in
  let s_plain = mk () and s_digest = mk () in
  ignore (Mad_mql.Session.enable_digest s_digest);
  (* toggling selects one of two long-lived sessions, so the digest
     side pays steady-state recording, not per-sample setup *)
  let use_digest = ref true in
  let digest_work () =
    Mad_mql.Session.run (if !use_digest then s_digest else s_plain) q1
  in
  ignore (Bench_util.time_ns "obs/b_q1-digest-on" digest_work);
  use_digest := false;
  ignore (Bench_util.time_ns "obs/b_q1-digest-off" digest_work);
  use_digest := true;
  let d_pct, d_on, d_off =
    measure ~set:(fun b -> use_digest := b) ~threshold:3.0 digest_work
  in
  let t = Table.create [ "path"; "digest on"; "digest off"; "overhead" ] in
  Table.add_row t
    [ "MOL b_q1"; Bench_util.pp_ns d_on; Bench_util.pp_ns d_off;
      Printf.sprintf "%.2f%%" d_pct ];
  Table.print t;
  Format.printf "digest overhead: %.2f%% (threshold 3%%): %s@." d_pct
    (if d_pct < 3.0 then "digest-overhead-ok" else "digest-overhead-exceeded");

  (* -- the timeline sampler's price on the same statement path -- *)
  Bench_util.subsection "timeline overhead (brazil b_q1 statement)";
  (* a 10 ms interval samples ~100 frames/s — far denser than the 1 s
     default — so the gate prices the sampler pessimistically; the off
     side still pays auto_tick's enabled check, pricing exactly the
     frames *)
  let tl = Mad_obs.Timeline.configure ~interval:0.01 () in
  let s_tl = mk () in
  let timeline_work () = Mad_mql.Session.run s_tl q1 in
  ignore (Bench_util.time_ns "obs/b_q1-timeline-on" timeline_work);
  Mad_obs.Timeline.set_enabled false;
  ignore (Bench_util.time_ns "obs/b_q1-timeline-off" timeline_work);
  Mad_obs.Timeline.set_enabled true;
  let tl_pct, tl_on, tl_off =
    measure ~set:Mad_obs.Timeline.set_enabled ~threshold:3.0 timeline_work
  in
  let t = Table.create [ "path"; "timeline on"; "timeline off"; "overhead" ] in
  Table.add_row t
    [ "MOL b_q1"; Bench_util.pp_ns tl_on; Bench_util.pp_ns tl_off;
      Printf.sprintf "%.2f%%" tl_pct ];
  Table.print t;
  Format.printf
    "timeline overhead: %.2f%% (threshold 3%%, %d frame(s) sampled): %s@."
    tl_pct
    (Mad_obs.Timeline.sampled tl)
    (if tl_pct < 3.0 then "timeline-overhead-ok" else "timeline-overhead-exceeded");

  (* -- the trace artifact: dump this run's ring and prove it parses -- *)
  Bench_util.subsection "Chrome trace artifact (obs-trace.json)";
  let ring = Recorder.global () in
  Recorder.dump ring "obs-trace.json";
  let text =
    let ic = open_in "obs-trace.json" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> In_channel.input_all ic)
  in
  (match Json.of_string text with
   | Ok json ->
     let n_events =
       match Json.member "traceEvents" json with
       | Some (Json.List l) -> List.length l
       | _ -> 0
     in
     Format.printf
       "obs-trace.json: %d trace event(s) from %d recorded, parses: \
        trace-artifact-ok@."
       n_events (Recorder.recorded ring)
   | Error msg ->
     Format.printf "obs-trace.json: INVALID (%s): trace-artifact-bad@." msg)
