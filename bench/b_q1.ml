(* Q1 — ch. 4's first query: SELECT ALL FROM
   mt_state(state-area-edge-point).  End-to-end MOL (parse + translate
   + evaluate) vs the hand-written algebra expression vs the relational
   3-way join plan, at scale. *)

module Table = Mad_store.Table
open Workloads

let q1 = "SELECT ALL FROM mt_state(state-area-edge-point);"

let run () =
  Bench_util.section "Q1 - SELECT ALL FROM mt_state(state-area-edge-point)";

  (* correctness on the paper instance *)
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let session = Mad_mql.Session.create db in
  (match Mad_mql.Session.run session q1 with
   | Mad_mql.Session.Result (Mad_mql.Translate.Molecules mt) ->
     Format.printf "MOL> %s@.%d molecules (one per state)@." q1
       (Mad.Molecule_type.cardinality mt)
   | _ -> assert false);

  let t =
    Table.create
      [
        "scale"; "MOL end-to-end"; "algebra only"; "relational (aux)";
        "relational (FK-inlined)"; "rel/alg";
      ]
  in
  List.iter
    (fun (label, p) ->
      let g = Geo_gen.build p in
      let gdb = g.Geo_grid.db in
      let desc = Geo_schema.mt_state_desc gdb in
      let map = Relational.Mapping.of_database gdb in
      let map_fk = Relational.Mapping.of_database ~inline_1n:true gdb in
      let mol_ns =
        Bench_util.time_ns ("q1/mol/" ^ label) (fun () ->
            let s = Mad_mql.Session.create gdb in
            Mad_mql.Session.run s q1)
      in
      let alg_ns =
        Bench_util.time_ns ("q1/algebra/" ^ label) (fun () ->
            Mad.Derive.m_dom gdb desc)
      in
      let rel_ns =
        Bench_util.time_ns ("q1/rel/" ^ label) (fun () ->
            Relational.Emulate.derive map gdb desc)
      in
      let fk_ns =
        Bench_util.time_ns ("q1/rel-fk/" ^ label) (fun () ->
            Relational.Emulate.derive map_fk gdb desc)
      in
      Table.add_row t
        [
          label;
          Bench_util.pp_ns mol_ns;
          Bench_util.pp_ns alg_ns;
          Bench_util.pp_ns rel_ns;
          Bench_util.pp_ns fk_ns;
          Bench_util.ratio rel_ns alg_ns;
        ])
    [
      ("brazil", { Geo_gen.default with Geo_gen.rows = 5; cols = 2 });
      ("8x8", { Geo_gen.default with Geo_gen.rows = 8; cols = 8 });
      ("16x16", { Geo_gen.default with Geo_gen.rows = 16; cols = 16 });
    ];
  Table.print t;

  (* the flat relational answer's redundancy *)
  let map = Relational.Mapping.of_database db in
  let flat =
    Relational.Emulate.flat_join map db (Geo_brazil.mt_state_desc brazil)
  in
  Format.printf
    "flat relational answer: %d rows for 10 molecules over %d distinct atoms@."
    (Relational.Relation.cardinality flat)
    (Mad_store.Database.total_atoms db)
