(* FIG2 — the two molecule types of Fig. 2 ('mt state' and 'point
   neighborhood') derived from the same atom networks, with shared
   subobjects; cost compared across the three engines: MAD derivation,
   the relational join plan over auxiliary relations, and the NF²
   embedding (which must duplicate shared atoms). *)

open Mad_store
open Workloads

let run () =
  Bench_util.section
    "FIG2 - molecule types 'mt state' and 'point neighborhood'";

  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in

  (* reproduce the figure's content *)
  let mt_state =
    Mad.Molecule_algebra.define db ~name:"mt_state"
      (Geo_brazil.mt_state_desc brazil)
  in
  let pn_mt =
    Mad.Molecule_algebra.define db ~name:"pn"
      (Geo_brazil.point_neighborhood_desc brazil)
  in
  Format.printf
    "mt state: %d molecules; shared atoms across molecules: %d; NF2 \
     duplication: %.2f@."
    (Mad.Molecule_type.cardinality mt_state)
    (List.length (Mad.Render.shared_subobjects mt_state))
    (Nf2.Embed.duplication (Nf2.Embed.of_molecule_type db mt_state));
  let pn =
    match Mad.Molecule_type.find_by_root pn_mt brazil.Geo_brazil.pn with
    | Some m -> m
    | None -> assert false
  in
  Format.printf
    "point neighborhood of pn: %d states, %d rivers (Fig. 2: SP MS MG GO; \
     Parana)@."
    (Aid.Set.cardinal (Mad.Molecule.component pn "state"))
    (Aid.Set.cardinal (Mad.Molecule.component pn "river"));

  (* derivation cost across engines, at scale *)
  let t =
    Table.create
      [ "scale"; "structure"; "MAD derive"; "relational joins"; "rel/MAD" ]
  in
  List.iter
    (fun (label, p) ->
      let g = Geo_gen.build p in
      let gdb = g.Geo_grid.db in
      let map = Relational.Mapping.of_database gdb in
      List.iter
        (fun (sname, desc) ->
          let mad_ns =
            Bench_util.time_ns
              (Printf.sprintf "fig2/mad/%s/%s" label sname)
              (fun () -> Mad.Derive.m_dom gdb desc)
          in
          let rel_ns =
            Bench_util.time_ns
              (Printf.sprintf "fig2/rel/%s/%s" label sname)
              (fun () -> Relational.Emulate.derive map gdb desc)
          in
          Table.add_row t
            [
              label;
              sname;
              Bench_util.pp_ns mad_ns;
              Bench_util.pp_ns rel_ns;
              Bench_util.ratio rel_ns mad_ns;
            ])
        [
          ("mt_state", Geo_schema.mt_state_desc gdb);
          ("point_nbhd", Geo_schema.point_neighborhood_desc gdb);
        ])
    [
      ("4x4", { Geo_gen.default with Geo_gen.rows = 4; cols = 4 });
      ("8x8", { Geo_gen.default with Geo_gen.rows = 8; cols = 8 });
    ];
  Table.print t;

  (* the symmetric-index ablation: a single frontier expansion
     (area -> edge for every area) through the adjacency index vs by
     scanning the link type's pairs — the per-traversal price a model
     without first-class links pays *)
  let t = Table.create [ "scale"; "via index"; "via pair scan"; "scan/index" ] in
  List.iter
    (fun (label, p) ->
      let g = Geo_gen.build p in
      let gdb = g.Geo_grid.db in
      let areas = Database.atoms gdb "area" in
      let expand neighbors =
        List.iter
          (fun (a : Atom.t) -> ignore (neighbors gdb "area-edge" ~dir:`Fwd a.Atom.id))
          areas
      in
      let idx_ns =
        Bench_util.time_ns ("fig2/index/" ^ label) (fun () ->
            expand Database.neighbors)
      in
      let scan_ns =
        Bench_util.time_ns ("fig2/scan/" ^ label) (fun () ->
            expand Database.neighbors_scan)
      in
      Table.add_row t
        [
          label;
          Bench_util.pp_ns idx_ns;
          Bench_util.pp_ns scan_ns;
          Bench_util.ratio scan_ns idx_ns;
        ])
    [
      ("4x4", { Geo_gen.default with Geo_gen.rows = 4; cols = 4 });
      ("8x8", { Geo_gen.default with Geo_gen.rows = 8; cols = 8 });
    ];
  Table.print t;

  (* NF2 embedding cost and duplication at scale *)
  let t =
    Table.create
      [ "scale"; "distinct atoms"; "NF2 instances"; "duplication"; "embed time" ]
  in
  List.iter
    (fun (label, p) ->
      let g = Geo_gen.build p in
      let gdb = g.Geo_grid.db in
      let mt =
        Mad.Molecule_algebra.define gdb ~name:"s" (Geo_schema.mt_state_desc gdb)
      in
      let e = Nf2.Embed.of_molecule_type gdb mt in
      let ns =
        Bench_util.time_ns ("fig2/nf2/" ^ label) (fun () ->
            Nf2.Embed.of_molecule_type gdb mt)
      in
      Table.add_row t
        [
          label;
          string_of_int e.Nf2.Embed.atoms_distinct;
          string_of_int e.Nf2.Embed.atoms_embedded;
          Printf.sprintf "%.2f" (Nf2.Embed.duplication e);
          Bench_util.pp_ns ns;
        ])
    [
      ("4x4", { Geo_gen.default with Geo_gen.rows = 4; cols = 4 });
      ("8x8", { Geo_gen.default with Geo_gen.rows = 8; cols = 8 });
    ];
  Table.print t
