(* Q2 — ch. 4's second query: the point-neighborhood restriction
   WHERE point.name='pn'.  The pushdown ablation: PRIMA's naive plan
   (derive all molecules, then filter — the letter of Def. 10) versus
   the optimized plan (root restriction pushed into the scan), and the
   relational filtered plan, at scale. *)

module Table = Mad_store.Table
open Workloads
module P = Prima.Planner
module X = Prima.Executor
module AI = Prima.Atom_interface

let run () =
  Bench_util.section
    "Q2 - point neighborhood with restriction (pushdown ablation)";

  let query gdb name =
    {
      P.name;
      desc = Geo_schema.point_neighborhood_desc gdb;
      where = Some Mad.Qual.(attr "point" "name" =% str name);
      select = None;
    }
  in

  (* correctness on the paper instance *)
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let naive, optimized = X.compare_plans db (query db "pn") in
  Format.printf
    "result: %d molecule (pn); naive counters: %a; optimized: %a@."
    (Mad.Molecule_type.cardinality optimized.X.mt)
    AI.pp_counters naive.X.counters AI.pp_counters optimized.X.counters;

  let t =
    Table.create
      [
        "scale"; "points"; "naive"; "optimized"; "speedup";
        "relational filtered"; "NF2 select"; "NF2 embed (once)";
      ]
  in
  List.iter
    (fun (label, p) ->
      let g = Geo_gen.build p in
      let gdb = g.Geo_grid.db in
      (* restrict to one named point of the generated grid *)
      let q = query gdb "p1_1" in
      let naive_ns =
        Bench_util.time_ns ("q2/naive/" ^ label) (fun () ->
            X.run ~optimize:false gdb q)
      in
      let opt_ns =
        Bench_util.time_ns ("q2/optimized/" ^ label) (fun () ->
            X.run ~optimize:true gdb q)
      in
      let map = Relational.Mapping.of_database gdb in
      let rel_ns =
        Bench_util.time_ns ("q2/rel/" ^ label) (fun () ->
            Relational.Emulate.derive_filtered map gdb
              (Geo_schema.point_neighborhood_desc gdb) ~root_pred:(fun tu ->
                match tu.(1) with
                | Mad_store.Value.String s -> String.equal s "p1_1"
                | _ -> false))
      in
      (* the hierarchical baseline: pre-materialize the embedding (the
         duplication cost), then select on the root attribute *)
      let mt =
        Mad.Molecule_algebra.define gdb
          ~name:(Printf.sprintf "pn_%s" label)
          (Geo_schema.point_neighborhood_desc gdb)
      in
      let embed () = Nf2.Embed.of_molecule_type gdb mt in
      let e = embed () in
      let nf2_select () =
        Nf2.Query.select_exists e.Nf2.Embed.nrel ~path:[] ~attr:"name"
          (fun v -> Mad_store.Value.equal_sem v (Mad_store.Value.String "p1_1"))
      in
      let nf2_ns = Bench_util.time_ns ("q2/nf2-select/" ^ label) nf2_select in
      let embed_ns = Bench_util.time_ns ("q2/nf2-embed/" ^ label) embed in
      Table.add_row t
        [
          label;
          string_of_int (Mad_store.Database.count_atoms gdb "point");
          Bench_util.pp_ns naive_ns;
          Bench_util.pp_ns opt_ns;
          Bench_util.ratio naive_ns opt_ns;
          Bench_util.pp_ns rel_ns;
          Bench_util.pp_ns nf2_ns;
          Bench_util.pp_ns embed_ns;
        ])
    [
      ("4x4", { Geo_gen.default with Geo_gen.rows = 4; cols = 4 });
      ("8x8", { Geo_gen.default with Geo_gen.rows = 8; cols = 8 });
      ("16x16", { Geo_gen.default with Geo_gen.rows = 16; cols = 16 });
    ];
  Table.print t;
  Format.printf
    "the naive plan derives one molecule per point; pushdown derives only \
     the qualifying root's molecule — the gap widens linearly with the \
     number of points.@."
