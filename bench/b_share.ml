(* SHARE — the paper's ch. 1-2 claim quantified: with shared
   subobjects (n:m links) the relational transformation gets auxiliary
   relations and its queries more join work, and NF² gets duplication;
   MAD's link traversal is unaffected.  Sweep over the sharing knob
   (rivers reusing border edges vs carrying private geometry) and over
   database scale. *)

module Table = Mad_store.Table
open Workloads

let run () =
  Bench_util.section "SHARE - sharing-factor and scale sweep";

  let t =
    Table.create
      [
        "scale";
        "rivers";
        "sharing";
        "atoms";
        "MAD derive";
        "rel derive";
        "rel/MAD";
        "NF2 dup";
      ]
  in
  let scales =
    [
      ("4x4", 4);
      ("8x8", 8);
    ]
  in
  List.iter
    (fun (label, n) ->
      List.iter
        (fun shared ->
          let p =
            {
              Geo_gen.rows = n;
              cols = n;
              rivers = n;
              river_len = n;
              cities = n;
              shared_rivers = shared;
              seed = 42;
            }
          in
          let g = Geo_gen.build p in
          let gdb = g.Geo_grid.db in
          let desc = Geo_schema.point_neighborhood_desc gdb in
          let map = Relational.Mapping.of_database gdb in
          let tag = Printf.sprintf "%s/%b" label shared in
          let mad_ns =
            Bench_util.time_ns ("share/mad/" ^ tag) (fun () ->
                Mad.Derive.m_dom gdb desc)
          in
          let rel_ns =
            Bench_util.time_ns ("share/rel/" ^ tag) (fun () ->
                Relational.Emulate.derive map gdb desc)
          in
          let dup =
            (* duplication of a hierarchical (NF²-style) representation
               holding BOTH object families over the same geometry:
               shared rivers reuse the states' border atoms, so their
               separate embeddings duplicate them *)
            let mt_s =
              Mad.Molecule_algebra.define gdb ~name:"s"
                (Geo_schema.mt_state_desc gdb)
            in
            let mt_r =
              Mad.Molecule_algebra.define gdb ~name:"r"
                (Geo_schema.mt_river_desc gdb)
            in
            let es = Nf2.Embed.of_molecule_type gdb mt_s in
            let er = Nf2.Embed.of_molecule_type gdb mt_r in
            let distinct =
              List.fold_left
                (fun s m -> Mad_store.Aid.Set.union s (Mad.Molecule.atoms m))
                Mad_store.Aid.Set.empty
                (Mad.Molecule_type.occ mt_s @ Mad.Molecule_type.occ mt_r)
              |> Mad_store.Aid.Set.cardinal
            in
            float_of_int
              (es.Nf2.Embed.atoms_embedded + er.Nf2.Embed.atoms_embedded)
            /. float_of_int (max 1 distinct)
          in
          Table.add_row t
            [
              label;
              string_of_int p.Geo_gen.rivers;
              (if shared then "shared" else "private");
              string_of_int (Mad_store.Database.total_atoms gdb);
              Bench_util.pp_ns mad_ns;
              Bench_util.pp_ns rel_ns;
              Bench_util.ratio rel_ns mad_ns;
              Printf.sprintf "%.2f" dup;
            ])
        [ true; false ])
    scales;
  Table.print t;

  (* logical work counters at one fixed scale: who wins and why *)
  let p = { Geo_gen.default with Geo_gen.rows = 8; cols = 8; rivers = 8; river_len = 8 } in
  let g = Geo_gen.build p in
  let gdb = g.Geo_grid.db in
  let desc = Geo_schema.point_neighborhood_desc gdb in
  let mstats = Mad.Derive.stats () in
  ignore (Mad.Derive.m_dom ~stats:mstats gdb desc);
  let map = Relational.Mapping.of_database gdb in
  let rstats = Relational.Rel_algebra.stats () in
  ignore (Relational.Emulate.derive ~stats:rstats map gdb desc);
  Format.printf
    "8x8 shared: MAD traverses %d links; the relational plan scans %d \
     tuples and emits %d (auxiliary relations double-visit every \
     relationship).@."
    (Mad.Derive.links_traversed mstats)
    rstats.Relational.Rel_algebra.tuples_scanned
    rstats.Relational.Rel_algebra.tuples_emitted
