(* mixed — delta maintenance under a mixed read/write workload: N
   reader domains stream a structural MOL query through [madql serve]
   while one writer commits INSERTs into the same structure.  Every
   commit moves the epoch, so each reader session's next statement
   pays a catalog refresh — before delta maintenance that meant a full
   CSR rebuild per commit; with it, the snapshot is patched and the
   closure memos repaired.

   Reported: the warm (read-only) read latency distribution, the read
   distribution while commits land, and the snapshot delta/rebuild
   counters over the mixed phase.  The gate: post-commit read p50 must
   stay within 3x the warm p50 AND the delta path must actually have
   applied (snapshot.delta_applied > 0); the harness prints
   "mixed-delta-ok" for CI to grep. *)

module Table = Mad_store.Table
open Mad_serve

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ()) ("b_mixed_" ^ name)

let brazil () = Workloads.Geo_brazil.db (Workloads.Geo_brazil.build ())

let quantile sorted q =
  if Array.length sorted = 0 then 0.0
  else
    sorted.(min (Array.length sorted - 1)
              (int_of_float (q *. float_of_int (Array.length sorted))))

let query = "SELECT ALL FROM mt_state(state-area-edge-point);"

let dreg () = Mad_obs.Obs.registry (Mad_obs.Obs.default ())
let counter name = Mad_obs.Registry.counter_value (dreg ()) name

(* one reader: its own connection and session, reads until [stop] is
   raised (and at least [at_least] reads), dropping the first [drop]
   reads (connection + catalog-define warmup) from the stats.  Returns
   (latencies, minor words, promoted words) — GC counters are
   domain-local in OCaml 5, so each reader samples its own deltas. *)
let reader srv ~drop ~at_least ~stop =
  let clock = !Mad_obs.Span.clock in
  let m0 = Gc.minor_words () and g0 = Gc.quick_stat () in
  let lats =
    match Client.connect ~host:"127.0.0.1" (Serve.port srv) with
    | Error e ->
      Format.eprintf "bench: connect failed: %a@." Client.pp_connect_error e;
      []
    | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let lats = ref [] in
          let n = ref 0 in
          let cap = 2000 in
          while (!n < at_least || not (Atomic.get stop)) && !n < cap do
            let s0 = clock () in
            (match Client.exec c query with
            | Ok _ -> ()
            | Error msg -> Format.eprintf "bench: %s@." msg);
            let dt = clock () -. s0 in
            incr n;
            if !n > drop then lats := (dt *. 1e6) :: !lats
          done;
          !lats)
  in
  let m1 = Gc.minor_words () and g1 = Gc.quick_stat () in
  ( lats,
    Float.max 0.0 (m1 -. m0),
    Float.max 0.0 (g1.Gc.promoted_words -. g0.Gc.promoted_words) )

let sum_gc joined =
  ( List.concat_map (fun (ls, _, _) -> ls) joined,
    List.fold_left (fun acc (_, m, _) -> acc +. m) 0.0 joined,
    List.fold_left (fun acc (_, _, p) -> acc +. p) 0.0 joined )

let stats lats =
  let sorted = Array.of_list lats in
  Array.sort compare sorted;
  let mean =
    Array.fold_left ( +. ) 0.0 sorted
    /. float_of_int (max 1 (Array.length sorted))
  in
  (mean, quantile sorted 0.5, quantile sorted 0.95, Array.length sorted)

let run () =
  Bench_util.section "mixed: delta maintenance - N readers + 1 writer";
  let dir = tmp "store" in
  Mad_durable.Harness.rm_rf dir;
  let h = Mad_durable.Durable.open_dir ~seed:(brazil ()) dir in
  let config =
    { Serve.default_config with Serve.workers = 8; max_pending = 32 }
  in
  let srv = Serve.start ~config ~durable:h (Mad_durable.Durable.db h) in
  let readers = 4 and drop = 3 in
  (* warm phase: reads only, no epoch movement *)
  let stop_now = Atomic.make true in
  let warm_lats, w_minor, w_promoted =
    List.init readers (fun _ ->
        Stdlib.Domain.spawn (fun () ->
            reader srv ~drop ~at_least:(drop + 40) ~stop:stop_now))
    |> List.map Stdlib.Domain.join |> sum_gc
  in
  let w_mean, w_p50, w_p95, w_n = stats warm_lats in
  (* mixed phase: the same readers race a writer committing into the
     very structure they query *)
  let d0 = counter "snapshot.delta_applied" in
  let r0 = counter "snapshot.rebuild" in
  let stop = Atomic.make false in
  let reader_doms =
    List.init readers (fun _ ->
        Stdlib.Domain.spawn (fun () ->
            reader srv ~drop ~at_least:(drop + 20) ~stop))
  in
  let writer =
    Stdlib.Domain.spawn (fun () ->
        match Client.connect ~host:"127.0.0.1" (Serve.port srv) with
        | Error e ->
          Format.eprintf "bench: writer connect failed: %a@."
            Client.pp_connect_error e;
          0
        | Ok c ->
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let committed = ref 0 in
              for j = 1 to 30 do
                (match
                   Client.exec c
                     (Printf.sprintf "INSERT INTO state VALUES ('MX%02d', %d);"
                        j (300 + j))
                 with
                | Ok _ -> incr committed
                | Error msg -> Format.eprintf "bench: %s@." msg);
                Unix.sleepf 0.002
              done;
              !committed))
  in
  let commits = Stdlib.Domain.join writer in
  Atomic.set stop true;
  let mixed_lats, m_minor, m_promoted =
    List.map Stdlib.Domain.join reader_doms |> sum_gc
  in
  let m_mean, m_p50, m_p95, m_n = stats mixed_lats in
  let applied = counter "snapshot.delta_applied" - d0 in
  let rebuilt = counter "snapshot.rebuild" - r0 in
  Serve.stop srv;
  Mad_durable.Durable.close h;
  Mad_durable.Harness.rm_rf dir;
  let t =
    Table.create [ "phase"; "reads"; "mean"; "p50"; "p95"; "delta/rebuild" ]
  in
  Table.add_row t
    [
      "warm";
      string_of_int w_n;
      Printf.sprintf "%.0f us" w_mean;
      Printf.sprintf "%.0f us" w_p50;
      Printf.sprintf "%.0f us" w_p95;
      "-";
    ];
  Table.add_row t
    [
      Printf.sprintf "mixed (%d commits)" commits;
      string_of_int m_n;
      Printf.sprintf "%.0f us" m_mean;
      Printf.sprintf "%.0f us" m_p50;
      Printf.sprintf "%.0f us" m_p95;
      Printf.sprintf "%d/%d" applied rebuilt;
    ];
  Table.print t;
  Bench_util.record_external ~name:"mixed/read-warm" ~iterations:w_n
    ~ns_per_run:(w_mean *. 1e3) ~mean_us:w_mean ~p50_us:w_p50 ~p95_us:w_p95
    ~minor_words_per_run:(w_minor /. float_of_int (max 1 w_n))
    ~promoted_words_per_run:(w_promoted /. float_of_int (max 1 w_n))
    ();
  Bench_util.record_external ~name:"mixed/read-post-commit" ~iterations:m_n
    ~ns_per_run:(m_mean *. 1e3) ~mean_us:m_mean ~p50_us:m_p50 ~p95_us:m_p95
    ~minor_words_per_run:(m_minor /. float_of_int (max 1 m_n))
    ~promoted_words_per_run:(m_promoted /. float_of_int (max 1 m_n))
    ();
  (* the acceptance gate: commits must not turn reads into rebuilds *)
  let within = m_p50 <= 3.0 *. w_p50 in
  if within && applied > 0 then
    Format.printf
      "mixed-delta-ok (post-commit read p50 %.0f us <= 3x warm %.0f us; %d \
       delta applies, %d rebuilds)@."
      m_p50 w_p50 applied rebuilt
  else
    Format.printf
      "mixed-delta-FAILED (post-commit p50 %.0f us vs warm %.0f us; %d delta \
       applies, %d rebuilds)@."
      m_p50 w_p50 applied rebuilt
